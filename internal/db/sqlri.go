package db

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/memmap"
)

// Latch is DB2's user-space latch (sqloSem): unlike the Solaris mutexes of
// the kernel model, its misses are attributed to DB2 (the paper's module
// analysis groups DB2's own synchronization under the DB2 categories).
type Latch struct {
	d    *Engine
	Addr uint64
}

// NewLatch allocates a user-space latch.
func (d *Engine) NewLatch() *Latch {
	return &Latch{d: d, Addr: d.K.AllocBlocks(1)}
}

// Enter acquires the latch.
func (l *Latch) Enter(ctx *engine.Ctx) {
	ctx.Call(l.d.fn.sqloSem)
	ctx.Read(l.Addr)
	ctx.Write(l.Addr)
	ctx.Ret()
}

// Exit releases the latch.
func (l *Latch) Exit(ctx *engine.Ctx) {
	ctx.Call(l.d.fn.sqloSem)
	ctx.Write(l.Addr)
	ctx.Ret()
}

// Plan models a compiled SQL execution plan: an operator tree flattened
// into op-node blocks that the runtime interpreter (sqlri, the analogue of
// perl's Perl_pp_* functions) walks for every tuple. The plan is compiled
// once and reused by every execution, so interpretation is one of the most
// repetitive activities in the engine (~90% of its misses recur).
type Plan struct {
	d     *Engine
	ops   []uint64
	stats uint64 // execution counters, written per run (shared, hot)
}

// NewPlan compiles a plan of nops operators, laid out in a dedicated
// region with a shuffled visit order (operator trees are pointer-linked,
// not sequential).
func (d *Engine) NewPlan(name string, nops int, rng *rand.Rand) *Plan {
	region := d.K.AS.Alloc("db.plan."+name, uint64(nops)*memmap.BlockSize)
	p := &Plan{d: d, stats: d.K.AllocBlocks(1)}
	for _, i := range rng.Perm(nops) {
		p.ops = append(p.ops, region.Base+uint64(i)*memmap.BlockSize)
	}
	return p
}

// Ops returns the number of operators.
func (p *Plan) Ops() int { return len(p.ops) }

// Interpret walks n operators starting at op index from (wrapping),
// modeling per-tuple plan evaluation.
func (p *Plan) Interpret(ctx *engine.Ctx, from, n int) {
	ctx.Call(p.d.fn.sqlriExec)
	for i := 0; i < n; i++ {
		ctx.Read(p.ops[(from+i)%len(p.ops)])
	}
	ctx.Read(p.stats)
	ctx.Write(p.stats) // per-execution counters
	ctx.AddInstr(uint64(n) * 12)
	ctx.Ret()
}

// Aggregate touches an aggregation work area (group hash) for one tuple.
type Aggregator struct {
	d      *Engine
	base   uint64
	groups uint64
}

// NewAggregator allocates an aggregation hash of the given group count.
func (d *Engine) NewAggregator(name string, groups int) *Aggregator {
	region := d.K.AS.Alloc("db.agg."+name, uint64(groups)*memmap.BlockSize)
	return &Aggregator{d: d, base: region.Base, groups: uint64(groups)}
}

// Update folds one tuple into its group.
func (a *Aggregator) Update(ctx *engine.Ctx, key uint64) {
	ctx.Call(a.d.fn.sqlriAgg)
	addr := a.base + (key%a.groups)*memmap.BlockSize
	ctx.Read(addr)
	ctx.Write(addr)
	ctx.Ret()
}

// Agent models a connection's work area: the sqlrr/sqlra request-control
// context touched at statement boundaries, with cursors from a recycled
// pool.
type Agent struct {
	d       *Engine
	ctxBase uint64 // 2 blocks
	cursor  uint64 // 1 block from the cursor pool
}

// NewAgent allocates one connection agent context.
func (d *Engine) NewAgent() *Agent {
	return &Agent{
		d:       d,
		ctxBase: d.K.AllocBlocks(2),
		cursor:  d.K.AllocBlocks(1),
	}
}

// StmtBegin opens a statement: request-control context and cursor setup.
func (ag *Agent) StmtBegin(ctx *engine.Ctx) {
	d := ag.d
	ctx.Call(d.fn.sqlrrStmtBegin)
	ctx.Read(ag.ctxBase)
	ctx.Write(ag.ctxBase)
	ctx.Call(d.fn.sqlraCursor)
	ctx.Read(ag.cursor)
	ctx.Write(ag.cursor)
	ctx.Ret()
	ctx.Ret()
}

// StmtEnd closes the statement.
func (ag *Agent) StmtEnd(ctx *engine.Ctx) {
	d := ag.d
	ctx.Call(d.fn.sqlrrStmtEnd)
	ctx.Write(ag.ctxBase + memmap.BlockSize)
	ctx.Write(ag.cursor)
	ctx.Ret()
}

// IPC models the client-server shared-memory channel: a doorbell block and
// per-connection request/response buffers, all reused across requests.
type IPC struct {
	d        *Engine
	doorbell uint64
	reqBuf   uint64
	respBuf  uint64
	bufBytes uint64
}

// NewIPC allocates one connection's IPC channel.
func (d *Engine) NewIPC(bufBytes uint64) *IPC {
	region := d.K.AS.Alloc("db.ipc", 2*bufBytes)
	return &IPC{
		d:        d,
		doorbell: d.K.AllocBlocks(1),
		reqBuf:   region.Base,
		respBuf:  region.Base + bufBytes,
		bufBytes: bufBytes,
	}
}

// ClientSend writes a request into the channel.
func (ipc *IPC) ClientSend(ctx *engine.Ctx, n uint64) {
	d := ipc.d
	if n > ipc.bufBytes {
		n = ipc.bufBytes
	}
	ctx.Call(d.fn.sqleIPCSend)
	ctx.WriteN(ipc.reqBuf, n)
	ctx.Read(ipc.doorbell)
	ctx.Write(ipc.doorbell)
	ctx.Ret()
}

// ServerRecv reads the pending request.
func (ipc *IPC) ServerRecv(ctx *engine.Ctx, n uint64) {
	d := ipc.d
	if n > ipc.bufBytes {
		n = ipc.bufBytes
	}
	ctx.Call(d.fn.sqleIPCRecv)
	ctx.Read(ipc.doorbell)
	ctx.ReadN(ipc.reqBuf, n)
	ctx.Ret()
}

// ServerReply writes the response.
func (ipc *IPC) ServerReply(ctx *engine.Ctx, n uint64) {
	d := ipc.d
	if n > ipc.bufBytes {
		n = ipc.bufBytes
	}
	ctx.Call(d.fn.sqleIPCSend)
	ctx.WriteN(ipc.respBuf, n)
	ctx.Write(ipc.doorbell)
	ctx.Ret()
}

// ClientRecv consumes the response.
func (ipc *IPC) ClientRecv(ctx *engine.Ctx, n uint64) {
	d := ipc.d
	if n > ipc.bufBytes {
		n = ipc.bufBytes
	}
	ctx.Call(d.fn.sqleIPCRecv)
	ctx.ReadN(ipc.respBuf, n)
	ctx.Ret()
}
