package db

import (
	"repro/internal/engine"
)

// Table models a heap table: fixed-size rows packed into sequential pages
// of a tablespace. Sequential scans visit pages in page order (the
// stride-friendly pattern of DSS), while rid-based fetches land wherever
// the row's page currently resides in the pool.
type Table struct {
	d           *Engine
	space       uint32
	firstPage   uint32
	Rows        int
	RowBytes    uint64
	rowsPerPage int
}

// NewTable defines a heap of nrows rows of rowBytes each, occupying pages
// [firstPage, firstPage+Pages()) of tablespace space.
func NewTable(d *Engine, space uint32, firstPage uint32, nrows int, rowBytes uint64) *Table {
	t := &Table{
		d:           d,
		space:       space,
		firstPage:   firstPage,
		Rows:        nrows,
		RowBytes:    rowBytes,
		rowsPerPage: int(d.P.PageBytes / rowBytes),
	}
	return t
}

// Pages returns the number of pages the table occupies.
func (t *Table) Pages() uint32 {
	return uint32((t.Rows + t.rowsPerPage - 1) / t.rowsPerPage)
}

// pageOf returns the PageID holding row rid.
func (t *Table) pageOf(rid int) (PageID, int) {
	p := rid / t.rowsPerPage
	slot := rid % t.rowsPerPage
	return PageID{t.space, t.firstPage + uint32(p)}, slot
}

// rowAddr returns the address of a slot within a fetched page frame.
func (t *Table) rowAddr(frame uint64, slot int) uint64 {
	return frame + uint64(slot)*t.RowBytes
}

// RowFetch reads row rid: slot directory plus the row's blocks.
func (t *Table) RowFetch(ctx *engine.Ctx, rid int) {
	d := t.d
	pid, slot := t.pageOf(rid)
	ctx.Call(d.fn.sqldRowFetch)
	frame := d.BP.Fetch(ctx, pid)
	ctx.Read(frame) // slot directory
	ctx.ReadN(t.rowAddr(frame, slot), t.RowBytes)
	ctx.Ret()
}

// RowUpdate rewrites row rid and logs the change.
func (t *Table) RowUpdate(ctx *engine.Ctx, rid int) {
	d := t.d
	pid, slot := t.pageOf(rid)
	ctx.Call(d.fn.sqldRowUpdate)
	frame := d.BP.Fetch(ctx, pid)
	ctx.Read(frame)
	addr := t.rowAddr(frame, slot)
	ctx.ReadN(addr, t.RowBytes)
	ctx.WriteN(addr, t.RowBytes)
	d.BP.MarkDirty(pid)
	d.Log.Append(ctx, t.RowBytes)
	ctx.Ret()
}

// ScanPages scans npages pages starting at page offset start, reading every
// block (tuple evaluation) and calling perPage after each page. It returns
// the next page offset.
func (t *Table) ScanPages(ctx *engine.Ctx, start, npages uint32, perPage func(frame uint64)) uint32 {
	d := t.d
	ctx.Call(d.fn.sqldScan)
	defer ctx.Ret()
	end := start + npages
	total := t.Pages()
	for p := start; p < end && p < total; p++ {
		frame := d.BP.Fetch(ctx, PageID{t.space, t.firstPage + p})
		ctx.ReadN(frame, d.P.PageBytes)
		ctx.AddInstr(uint64(t.rowsPerPage) * 60) // predicate evaluation per tuple
		if perPage != nil {
			perPage(frame)
		}
	}
	if end > total {
		end = total
	}
	return end
}
