package db

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/memmap"
	"repro/internal/sim"
	"repro/internal/solaris"
	"repro/internal/trace"
)

// rig assembles a db engine over a tiny machine.
type rig struct {
	as  *memmap.AddressSpace
	st  *trace.SymbolTable
	k   *solaris.Kernel
	d   *Engine
	m   sim.Machine
	eng *engine.Engine
	rng *rand.Rand
}

func newRig(t *testing.T, pages int) *rig {
	t.Helper()
	as := memmap.New()
	st := trace.NewSymbolTable(as)
	kp := solaris.DefaultParams(1)
	kp.KDataBytes = 1 << 20
	k := solaris.NewKernel(as, st, kp)
	p := DefaultParams()
	p.BufferPoolPages = pages
	d := New(k, p)
	return &rig{as: as, st: st, k: k, d: d, rng: rand.New(rand.NewSource(2))}
}

func (r *rig) finish() *engine.Ctx {
	r.k.VM.Finalize()
	r.m = sim.NewCMP(1, sim.CacheParams{L1Bytes: 2048, L1Ways: 2, L2Bytes: 16384, L2Ways: 4}, r.as.Blocks())
	r.eng = engine.New(r.m, r.k.Sched, r.k.Sync, 5)
	r.k.VM.Install(r.eng.Ctx(0))
	return r.eng.Ctx(0)
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	r := newRig(t, 64)
	ctx := r.finish()
	bp := r.d.BP

	a1 := bp.Fetch(ctx, PageID{1, 0})
	if bp.Misses != 1 || bp.Hits != 0 {
		t.Fatalf("first fetch: misses=%d hits=%d", bp.Misses, bp.Hits)
	}
	a2 := bp.Fetch(ctx, PageID{1, 0})
	if a1 != a2 {
		t.Error("refetch moved the page")
	}
	if bp.Hits != 1 {
		t.Errorf("hits = %d, want 1", bp.Hits)
	}
	if !bp.Resident(PageID{1, 0}) {
		t.Error("page not resident after fetch")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	r := newRig(t, 8)
	ctx := r.finish()
	bp := r.d.BP
	// Fetch more pages than frames: early pages must be evicted.
	for i := uint32(0); i < 20; i++ {
		bp.Fetch(ctx, PageID{1, i})
	}
	resident := 0
	for i := uint32(0); i < 20; i++ {
		if bp.Resident(PageID{1, i}) {
			resident++
		}
	}
	if resident != 8 {
		t.Errorf("resident pages = %d, want 8 (pool size)", resident)
	}
	if r.k.Disk.Reads != 20 {
		t.Errorf("disk reads = %d, want 20", r.k.Disk.Reads)
	}
}

func TestBufferPoolDirtyFlush(t *testing.T) {
	r := newRig(t, 2)
	ctx := r.finish()
	bp := r.d.BP
	bp.Fetch(ctx, PageID{1, 0})
	bp.MarkDirty(PageID{1, 0})
	bp.Fetch(ctx, PageID{1, 1})
	bp.Fetch(ctx, PageID{1, 2}) // evicts page 0, which is dirty
	if bp.Flushes != 1 {
		t.Errorf("flushes = %d, want 1", bp.Flushes)
	}
}

func TestBTreeSearchAndScan(t *testing.T) {
	r := newRig(t, 256)
	bt := NewBTree(r.d, 5, 1000, 50, r.rng)
	ctx := r.finish()

	if bt.Leaves() != 20 {
		t.Fatalf("leaves = %d, want 20", bt.Leaves())
	}
	if got := bt.Search(ctx, 0); got != 0 {
		t.Errorf("Search(0) leaf = %d", got)
	}
	if got := bt.Search(ctx, 999); got != 19 {
		t.Errorf("Search(999) leaf = %d", got)
	}
	if got := bt.Search(ctx, 5000); got != 19 {
		t.Errorf("out-of-range search leaf = %d", got)
	}
	var visited []int
	bt.Scan(ctx, 100, 200, func(leaf int) { visited = append(visited, leaf) })
	if len(visited) != 4 {
		t.Fatalf("scan visited %d leaves, want 4 (200 keys / 50 per leaf)", len(visited))
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] != visited[i-1]+1 {
			t.Errorf("scan not following sibling order: %v", visited)
		}
	}
}

func TestBTreeScanRepeatsAddressSequence(t *testing.T) {
	// The motivating example: two overlapping scans must produce the same
	// leaf-page miss address sequence.
	r := newRig(t, 256)
	bt := NewBTree(r.d, 5, 2000, 50, r.rng)
	ctx := r.finish()
	bt.Warm(ctx)

	record := func() []uint64 {
		start := r.m.OffChip().Len()
		bt.Scan(ctx, 500, 500, nil)
		var addrs []uint64
		for _, m := range r.m.OffChip().Misses[start:] {
			addrs = append(addrs, m.Addr)
		}
		return addrs
	}
	_ = record() // first scan faults its footprint into tiny caches
	a := record()
	b := record()
	if len(b) == 0 {
		t.Skip("caches too large to observe repeat misses")
	}
	if len(a) != len(b) {
		t.Fatalf("scan miss counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("miss %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestHeapTable(t *testing.T) {
	r := newRig(t, 128)
	tb := NewTable(r.d, 7, 0, 1000, 128)
	ctx := r.finish()
	if tb.Pages() != 32 { // 32 rows of 128B per 4KB page
		t.Fatalf("pages = %d", tb.Pages())
	}
	tb.RowFetch(ctx, 0)
	tb.RowFetch(ctx, 999)
	tb.RowUpdate(ctx, 500)
	if r.d.Log.Appends == 0 {
		t.Error("row update did not log")
	}
	next := tb.ScanPages(ctx, 0, 10, nil)
	if next != 10 {
		t.Errorf("ScanPages returned %d", next)
	}
	if end := tb.ScanPages(ctx, 30, 10, nil); end != 32 {
		t.Errorf("clamped scan end = %d, want 32", end)
	}
}

func TestLockManager(t *testing.T) {
	r := newRig(t, 16)
	ctx := r.finish()
	lm := r.d.Locks
	h1 := lm.Lock(ctx, 42)
	h2 := lm.Lock(ctx, 43)
	if h1 < 0 || h2 < 0 {
		t.Fatal("lock acquisition failed with free pool")
	}
	lm.Unlock(ctx, h1)
	lm.Unlock(ctx, h2)
	if lm.Acquires != 2 {
		t.Errorf("acquires = %d", lm.Acquires)
	}
	// Exhaust the pool: Lock degrades gracefully.
	var hs []int
	for i := 0; i < r.d.P.LockPoolSize+10; i++ {
		hs = append(hs, lm.Lock(ctx, uint64(i)))
	}
	if hs[len(hs)-1] != -1 {
		t.Error("exhausted pool should return -1 handles")
	}
	lm.Unlock(ctx, -1) // must be a no-op
}

func TestTxnLifecycle(t *testing.T) {
	r := newRig(t, 16)
	ctx := r.finish()
	tt := r.d.Txns
	slots := map[int]bool{}
	for i := 0; i < 5; i++ {
		s := tt.Begin(ctx)
		slots[s] = true
		tt.Commit(ctx, s)
	}
	if tt.Begins != 5 || tt.Commits != 5 {
		t.Errorf("begins/commits = %d/%d", tt.Begins, tt.Commits)
	}
	if len(slots) != 5 {
		t.Errorf("slot reuse too early: %v", slots)
	}
}

func TestLogWraps(t *testing.T) {
	r := newRig(t, 16)
	ctx := r.finish()
	lg := r.d.Log
	for i := 0; i < 100; i++ {
		lg.Append(ctx, 512) // 8 blocks per append over a 256-block buffer
	}
	if lg.Appends != 100 {
		t.Errorf("appends = %d", lg.Appends)
	}
}

func TestPlanInterpret(t *testing.T) {
	r := newRig(t, 16)
	p := r.d.NewPlan("q", 16, r.rng)
	ctx := r.finish()
	if p.Ops() != 16 {
		t.Fatalf("ops = %d", p.Ops())
	}
	before := r.m.OffChip().Len()
	p.Interpret(ctx, 0, 32) // wraps around the op list
	if r.m.OffChip().Len() == before {
		t.Error("interpretation emitted nothing")
	}
}

func TestAgentAndIPC(t *testing.T) {
	r := newRig(t, 16)
	ag := r.d.NewAgent()
	ipc := r.d.NewIPC(1024)
	ctx := r.finish()
	ag.StmtBegin(ctx)
	ipc.ClientSend(ctx, 256)
	ipc.ServerRecv(ctx, 256)
	ipc.ServerReply(ctx, 2048) // clamped to bufBytes
	ipc.ClientRecv(ctx, 2048)
	ag.StmtEnd(ctx)
	if r.m.OffChip().Len() == 0 {
		t.Error("agent/IPC path emitted nothing")
	}
}

func TestLatchPingPongIsCoherence(t *testing.T) {
	// DB latches on a multi-CPU machine must generate coherence misses.
	as := memmap.New()
	st := trace.NewSymbolTable(as)
	kp := solaris.DefaultParams(2)
	k := solaris.NewKernel(as, st, kp)
	d := New(k, DefaultParams())
	latch := d.NewLatch()
	k.VM.Finalize()
	m := sim.NewDSM(2, sim.CacheParams{L1Bytes: 2048, L1Ways: 2, L2Bytes: 16384, L2Ways: 4}, as.Blocks())
	eng := engine.New(m, k.Sched, k.Sync, 7)
	for i := 0; i < 2; i++ {
		k.VM.Install(eng.Ctx(i))
	}
	for i := 0; i < 10; i++ {
		latch.Enter(eng.Ctx(i % 2))
		latch.Exit(eng.Ctx(i % 2))
	}
	coh := m.OffChip().ClassCounts()[trace.Coherence]
	if coh < 8 {
		t.Errorf("latch ping-pong coherence misses = %d, want >= 8", coh)
	}
}
