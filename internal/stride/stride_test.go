package stride

import "testing"

func TestConstantStrideDetected(t *testing.T) {
	d := New(1)
	base := uint64(0x10000)
	var flags []bool
	for i := 0; i < 10; i++ {
		flags = append(flags, d.Observe(0, base+uint64(i)*64))
	}
	// First two establish the stride; from the third on it is confirmed.
	if flags[0] || flags[1] {
		t.Errorf("first two accesses must not be strided: %v", flags)
	}
	for i := 2; i < 10; i++ {
		if !flags[i] {
			t.Errorf("access %d should be strided: %v", i, flags)
		}
	}
}

func TestRandomNotStrided(t *testing.T) {
	d := New(1)
	addrs := []uint64{0x1000, 0x5040, 0x2080, 0x90c0, 0x3100, 0x7140}
	for i, a := range addrs {
		if d.Observe(0, a) {
			t.Errorf("access %d (%#x) flagged strided", i, a)
		}
	}
}

func TestZeroStrideNotCounted(t *testing.T) {
	d := New(1)
	for i := 0; i < 5; i++ {
		if d.Observe(0, 0x2000) {
			t.Error("repeated identical address must not count as strided")
		}
	}
}

func TestNegativeStride(t *testing.T) {
	d := New(1)
	// Stay inside one 1 MB tracking region: crossing a region boundary
	// resets the tracker (by design, as in hardware region-based tables).
	base := uint64(0x180000)
	var strided int
	for i := 0; i < 8; i++ {
		if d.Observe(0, base-uint64(i)*128) {
			strided++
		}
	}
	if strided != 6 {
		t.Errorf("negative stride: %d strided, want 6", strided)
	}
}

func TestInterleavedStreamsSeparatedByRegion(t *testing.T) {
	// Two interleaved strided streams in distant regions must both be
	// recognized (the per-region table separates them).
	d := New(1)
	a, b := uint64(0x0010_0000), uint64(0x4000_0000)
	var stridedA, stridedB int
	for i := 0; i < 10; i++ {
		if d.Observe(0, a+uint64(i)*64) && i >= 2 {
			stridedA++
		}
		if d.Observe(0, b+uint64(i)*256) && i >= 2 {
			stridedB++
		}
	}
	if stridedA != 8 || stridedB != 8 {
		t.Errorf("interleaved streams: a=%d b=%d, want 8 each", stridedA, stridedB)
	}
}

func TestPerCPUIndependence(t *testing.T) {
	d := New(2)
	base := uint64(0x8000)
	// CPU 0 sees a strided stream; CPU 1 sees every other element (stride
	// doubled) - both should be strided in their own views.
	var s0, s1 int
	for i := 0; i < 12; i++ {
		if d.Observe(0, base+uint64(i)*64) {
			s0++
		}
		if d.Observe(1, base+uint64(i)*128) {
			s1++
		}
	}
	if s0 != 10 || s1 != 10 {
		t.Errorf("per-cpu: s0=%d s1=%d, want 10 each", s0, s1)
	}
}

func TestFlags(t *testing.T) {
	cpus := []uint8{0, 0, 0, 0}
	addrs := []uint64{0, 64, 128, 192}
	got := Flags(1, cpus, addrs)
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Flags[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
