// Package stride implements the stride-predictability test used for the
// paper's Figure 3 ("Strides and temporal streams"): a miss is
// stride-predictable if it continues a constant-stride run that a
// conventional stride prefetcher would have learned.
//
// The detector keeps, per CPU, a small direct-mapped table of recent
// (address, delta) pairs keyed by coarse address region, mirroring how
// hardware stride prefetchers separate interleaved streams. A miss is
// counted as strided when its delta from the previous miss in the same
// region equals the previously observed delta (two-delta confirmation), so
// the first two misses of an arithmetic progression are not counted and
// every subsequent one is.
package stride

// regionBits selects the coarse region used to separate concurrent streams:
// 1 MB regions by default.
const regionBits = 20

// tableSize is the number of per-CPU tracking entries (power of two).
const tableSize = 64

type entry struct {
	region uint64
	last   uint64
	delta  int64
	valid  bool
}

// Detector classifies a per-CPU sequence of miss addresses as strided or
// not. The zero value is not usable; call New.
type Detector struct {
	tables [][]entry
}

// New returns a detector for ncpu CPUs.
func New(ncpu int) *Detector {
	t := make([][]entry, ncpu)
	for i := range t {
		t[i] = make([]entry, tableSize)
	}
	return &Detector{tables: t}
}

// CPUs returns the processor count the detector was built for.
func (d *Detector) CPUs() int { return len(d.tables) }

// Reset clears all tracking state while keeping the per-CPU tables, so one
// detector can be reused across traces without reallocating.
func (d *Detector) Reset() {
	for _, t := range d.tables {
		for i := range t {
			t[i] = entry{}
		}
	}
}

// Observe feeds the next miss address on cpu and reports whether it is
// stride-predictable.
func (d *Detector) Observe(cpu int, addr uint64) bool {
	region := addr >> regionBits
	e := &d.tables[cpu][region&(tableSize-1)]
	if !e.valid || e.region != region {
		*e = entry{region: region, last: addr, valid: true}
		return false
	}
	delta := int64(addr) - int64(e.last)
	strided := delta == e.delta && delta != 0
	e.delta = delta
	e.last = addr
	return strided
}

// Flags runs the detector over a whole per-miss sequence, returning one
// bool per miss. cpus and addrs must have equal length.
func Flags(ncpu int, cpus []uint8, addrs []uint64) []bool {
	d := New(ncpu)
	out := make([]bool, len(addrs))
	for i := range addrs {
		out[i] = d.Observe(int(cpus[i]), addrs[i])
	}
	return out
}
