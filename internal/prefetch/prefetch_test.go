package prefetch

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func mkTrace(cpu int, blocks ...uint64) *trace.Trace {
	tr := &trace.Trace{CPUs: cpu + 1}
	for _, b := range blocks {
		tr.Append(trace.Miss{Addr: b << 6, CPU: uint8(cpu)})
	}
	return tr
}

func repeatSeq(times int, seq ...uint64) []uint64 {
	var out []uint64
	for i := 0; i < times; i++ {
		out = append(out, seq...)
	}
	return out
}

func TestPerfectStreamCoverage(t *testing.T) {
	// A sequence repeated k times: from the second occurrence on, all but
	// the head miss should be covered.
	seq := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	tr := mkTrace(0, repeatSeq(10, seq...)...)
	r := Evaluate(tr, Config{Depth: 8})
	// 10 occurrences of 8 misses; occurrences 2-10 have 7 coverable
	// misses each (the head itself always misses).
	want := 9 * 7
	if r.Covered != want {
		t.Errorf("covered = %d, want %d", r.Covered, want)
	}
	if r.Accuracy() < 0.9 {
		t.Errorf("accuracy = %.2f, want >= 0.9 on a perfectly repeating trace", r.Accuracy())
	}
}

func TestRandomTraceNoCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var blocks []uint64
	for i := 0; i < 5000; i++ {
		blocks = append(blocks, rng.Uint64()%1_000_000_000)
	}
	tr := mkTrace(0, blocks...)
	r := Evaluate(tr, Config{Depth: 8})
	if r.Coverage() > 0.01 {
		t.Errorf("coverage on random trace = %.3f, want ~0", r.Coverage())
	}
}

func TestDepthTruncatesLongStreams(t *testing.T) {
	// One long stream: shallow depth must cover less than deep depth.
	seq := make([]uint64, 64)
	for i := range seq {
		seq[i] = uint64(100 + i)
	}
	tr := mkTrace(0, repeatSeq(6, seq...)...)
	rs := DepthSweep(tr, []int{2, 8, 64}, Config{})
	if !(rs[0].Coverage() < rs[1].Coverage() && rs[1].Coverage() < rs[2].Coverage()) {
		t.Errorf("coverage not monotone in depth: %.3f %.3f %.3f",
			rs[0].Coverage(), rs[1].Coverage(), rs[2].Coverage())
	}
	// Depth 64 covers nearly everything after the first occurrence...
	if rs[2].Coverage() < 0.7 {
		t.Errorf("deep coverage = %.3f, want >= 0.7", rs[2].Coverage())
	}
	// ...while depth 2 covers at most ~2 successors per head lookup. With
	// one lookup per covered-then-missed head the bound is loose, but it
	// must stay well below the deep configuration.
	if rs[0].Coverage() > rs[2].Coverage()*0.8 {
		t.Errorf("shallow depth too effective: %.3f vs %.3f", rs[0].Coverage(), rs[2].Coverage())
	}
}

func TestFiniteHistoryForgets(t *testing.T) {
	seq := make([]uint64, 100)
	for i := range seq {
		seq[i] = uint64(1000 + i)
	}
	// Two occurrences separated by 5000 distinct misses.
	var blocks []uint64
	blocks = append(blocks, seq...)
	for i := 0; i < 5000; i++ {
		blocks = append(blocks, uint64(100000+i))
	}
	blocks = append(blocks, seq...)
	tr := mkTrace(0, blocks...)

	long := Evaluate(tr, Config{Depth: 16})
	short := Evaluate(tr, Config{Depth: 16, HistoryLen: 1000})
	if long.Covered == 0 {
		t.Fatal("unbounded history covered nothing")
	}
	if short.Covered != 0 {
		t.Errorf("1000-entry history covered %d misses across a 5000-miss gap", short.Covered)
	}
}

func TestBufferPressureDiscards(t *testing.T) {
	seq := make([]uint64, 64)
	for i := range seq {
		seq[i] = uint64(7000 + i)
	}
	tr := mkTrace(0, repeatSeq(4, seq...)...)
	r := Evaluate(tr, Config{Depth: 64, BufferBlocks: 4})
	if r.Discarded == 0 {
		t.Error("tiny buffer discarded nothing under deep lookahead")
	}
	full := Evaluate(tr, Config{Depth: 64})
	if r.Covered >= full.Covered {
		t.Errorf("bounded buffer coverage %d >= unbounded %d", r.Covered, full.Covered)
	}
}

func TestPerCPUSplitsHistory(t *testing.T) {
	// The same stream alternating between two CPUs: a shared engine links
	// occurrences across CPUs, per-CPU engines see half the recurrences.
	seq := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	tr := &trace.Trace{CPUs: 2}
	for occ := 0; occ < 8; occ++ {
		for _, b := range seq {
			tr.Append(trace.Miss{Addr: b << 6, CPU: uint8(occ % 2)})
		}
	}
	shared := Evaluate(tr, Config{Depth: 8})
	split := Evaluate(tr, Config{Depth: 8, PerCPU: true})
	if split.Covered >= shared.Covered {
		t.Errorf("per-cpu coverage %d >= shared %d; streams recur across CPUs",
			split.Covered, shared.Covered)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Evaluate(&trace.Trace{CPUs: 1}, Config{})
	if r.Coverage() != 0 || r.Accuracy() != 0 {
		t.Error("empty trace must yield zero metrics")
	}
}

func TestStepMatchesEvaluate(t *testing.T) {
	seq := []uint64{5, 6, 7, 8, 9}
	tr := mkTrace(0, repeatSeq(6, seq...)...)
	cfg := Config{Depth: 4, HistoryLen: 16, BufferBlocks: 8}
	ev := NewEvaluator(cfg)
	for i := range tr.Misses {
		ev.Step(tr.Misses[i])
	}
	if got, want := ev.Result(), Evaluate(tr, cfg); got != want {
		t.Errorf("incremental result %+v != batch %+v", got, want)
	}
}

// --- Reference model ----------------------------------------------------

// refEngine is the original map/slice implementation of the prefetch
// engine, kept verbatim as the behavioral reference for the flat
// open-addressed-table + ring engine on the hot path.
type refEngine struct {
	cfg     Config
	history []uint64
	index   map[uint64]int
	buffer  map[uint64]int
	fifo    []uint64
	headPos int
}

func newRefEngine(cfg Config) *refEngine {
	return &refEngine{cfg: cfg, index: make(map[uint64]int), buffer: make(map[uint64]int)}
}

func (e *refEngine) observe(addr uint64, r *Result) {
	if _, ok := e.buffer[addr]; ok {
		r.Covered++
		r.Used++
		delete(e.buffer, addr)
		e.record(addr)
		return
	}
	if pos, ok := e.index[addr]; ok {
		r.LookupHits++
		base := pos - e.headPos
		for i := 1; i <= e.cfg.Depth; i++ {
			j := base + i
			if j < 0 || j >= len(e.history) {
				break
			}
			p := e.history[j]
			if p == addr {
				continue
			}
			if _, buffered := e.buffer[p]; buffered {
				continue
			}
			e.buffer[p] = r.Issued
			e.fifo = append(e.fifo, p)
			r.Issued++
		}
		if e.cfg.BufferBlocks > 0 {
			for len(e.buffer) > e.cfg.BufferBlocks && len(e.fifo) > 0 {
				victim := e.fifo[0]
				e.fifo = e.fifo[1:]
				if _, ok := e.buffer[victim]; ok {
					delete(e.buffer, victim)
					r.Discarded++
				}
			}
		}
	}
	e.record(addr)
}

func (e *refEngine) record(addr uint64) {
	e.index[addr] = e.headPos + len(e.history)
	e.history = append(e.history, addr)
	if e.cfg.HistoryLen > 0 && len(e.history) > e.cfg.HistoryLen {
		old := e.history[0]
		if e.index[old] == e.headPos {
			delete(e.index, old)
		}
		e.history = e.history[1:]
		e.headPos++
	}
}

func refEvaluate(tr *trace.Trace, cfg Config) Result {
	cfg = cfg.withDefaults()
	var r Result
	r.Misses = len(tr.Misses)
	if cfg.PerCPU {
		engines := make(map[uint8]*refEngine)
		for i := range tr.Misses {
			m := tr.Misses[i]
			e := engines[m.CPU]
			if e == nil {
				e = newRefEngine(cfg)
				engines[m.CPU] = e
			}
			e.observe(m.Addr, &r)
		}
		return r
	}
	e := newRefEngine(cfg)
	for i := range tr.Misses {
		e.observe(tr.Misses[i].Addr, &r)
	}
	return r
}

// TestFlatEngineMatchesReference drives the flat engine and the map-based
// reference over randomized stream-heavy traces across the config space
// (bounded/unbounded history and buffer, shared/per-CPU) and requires
// identical counters.
func TestFlatEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	mkRandom := func(n, cpus int) *trace.Trace {
		tr := &trace.Trace{CPUs: cpus}
		// Mixture of recurring streams (with varying heads and lengths),
		// address re-use inside streams, and noise — the cases that stress
		// stale fifo entries, index overwrites, and eviction order.
		streams := make([][]uint64, 12)
		for s := range streams {
			l := 2 + rng.Intn(30)
			streams[s] = make([]uint64, l)
			for i := range streams[s] {
				streams[s][i] = uint64(rng.Intn(4000))
			}
		}
		for tr.Len() < n {
			switch rng.Intn(4) {
			case 0: // noise burst
				for i := 0; i < rng.Intn(20); i++ {
					tr.Append(trace.Miss{Addr: uint64(rng.Intn(1<<26)) << 6, CPU: uint8(rng.Intn(cpus))})
				}
			default: // one stream occurrence on one CPU
				cpu := uint8(rng.Intn(cpus))
				for _, b := range streams[rng.Intn(len(streams))] {
					tr.Append(trace.Miss{Addr: b << 6, CPU: cpu})
				}
			}
		}
		return tr
	}
	configs := []Config{
		{},
		{Depth: 2},
		{Depth: 16, HistoryLen: 100},
		{Depth: 8, HistoryLen: 1000, BufferBlocks: 16},
		{Depth: 8, BufferBlocks: 4},
		{Depth: 8, HistoryLen: 64, BufferBlocks: 8, PerCPU: true},
		{Depth: 64, HistoryLen: 1}, // degenerate history
		{Depth: 4, PerCPU: true},
	}
	for trial := 0; trial < 4; trial++ {
		tr := mkRandom(3000+rng.Intn(2000), 1+rng.Intn(4))
		for _, cfg := range configs {
			got := Evaluate(tr, cfg)
			want := refEvaluate(tr, cfg)
			if got != want {
				t.Fatalf("trial %d cfg %+v: flat engine %+v != reference %+v", trial, cfg, got, want)
			}
		}
	}
}
