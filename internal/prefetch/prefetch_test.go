package prefetch

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func mkTrace(cpu int, blocks ...uint64) *trace.Trace {
	tr := &trace.Trace{CPUs: cpu + 1}
	for _, b := range blocks {
		tr.Append(trace.Miss{Addr: b << 6, CPU: uint8(cpu)})
	}
	return tr
}

func repeatSeq(times int, seq ...uint64) []uint64 {
	var out []uint64
	for i := 0; i < times; i++ {
		out = append(out, seq...)
	}
	return out
}

func TestPerfectStreamCoverage(t *testing.T) {
	// A sequence repeated k times: from the second occurrence on, all but
	// the head miss should be covered.
	seq := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	tr := mkTrace(0, repeatSeq(10, seq...)...)
	r := Evaluate(tr, Config{Depth: 8})
	// 10 occurrences of 8 misses; occurrences 2-10 have 7 coverable
	// misses each (the head itself always misses).
	want := 9 * 7
	if r.Covered != want {
		t.Errorf("covered = %d, want %d", r.Covered, want)
	}
	if r.Accuracy() < 0.9 {
		t.Errorf("accuracy = %.2f, want >= 0.9 on a perfectly repeating trace", r.Accuracy())
	}
}

func TestRandomTraceNoCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var blocks []uint64
	for i := 0; i < 5000; i++ {
		blocks = append(blocks, rng.Uint64()%1_000_000_000)
	}
	tr := mkTrace(0, blocks...)
	r := Evaluate(tr, Config{Depth: 8})
	if r.Coverage() > 0.01 {
		t.Errorf("coverage on random trace = %.3f, want ~0", r.Coverage())
	}
}

func TestDepthTruncatesLongStreams(t *testing.T) {
	// One long stream: shallow depth must cover less than deep depth.
	seq := make([]uint64, 64)
	for i := range seq {
		seq[i] = uint64(100 + i)
	}
	tr := mkTrace(0, repeatSeq(6, seq...)...)
	rs := DepthSweep(tr, []int{2, 8, 64}, Config{})
	if !(rs[0].Coverage() < rs[1].Coverage() && rs[1].Coverage() < rs[2].Coverage()) {
		t.Errorf("coverage not monotone in depth: %.3f %.3f %.3f",
			rs[0].Coverage(), rs[1].Coverage(), rs[2].Coverage())
	}
	// Depth 64 covers nearly everything after the first occurrence...
	if rs[2].Coverage() < 0.7 {
		t.Errorf("deep coverage = %.3f, want >= 0.7", rs[2].Coverage())
	}
	// ...while depth 2 covers at most ~2 successors per head lookup. With
	// one lookup per covered-then-missed head the bound is loose, but it
	// must stay well below the deep configuration.
	if rs[0].Coverage() > rs[2].Coverage()*0.8 {
		t.Errorf("shallow depth too effective: %.3f vs %.3f", rs[0].Coverage(), rs[2].Coverage())
	}
}

func TestFiniteHistoryForgets(t *testing.T) {
	seq := make([]uint64, 100)
	for i := range seq {
		seq[i] = uint64(1000 + i)
	}
	// Two occurrences separated by 5000 distinct misses.
	var blocks []uint64
	blocks = append(blocks, seq...)
	for i := 0; i < 5000; i++ {
		blocks = append(blocks, uint64(100000+i))
	}
	blocks = append(blocks, seq...)
	tr := mkTrace(0, blocks...)

	long := Evaluate(tr, Config{Depth: 16})
	short := Evaluate(tr, Config{Depth: 16, HistoryLen: 1000})
	if long.Covered == 0 {
		t.Fatal("unbounded history covered nothing")
	}
	if short.Covered != 0 {
		t.Errorf("1000-entry history covered %d misses across a 5000-miss gap", short.Covered)
	}
}

func TestBufferPressureDiscards(t *testing.T) {
	seq := make([]uint64, 64)
	for i := range seq {
		seq[i] = uint64(7000 + i)
	}
	tr := mkTrace(0, repeatSeq(4, seq...)...)
	r := Evaluate(tr, Config{Depth: 64, BufferBlocks: 4})
	if r.Discarded == 0 {
		t.Error("tiny buffer discarded nothing under deep lookahead")
	}
	full := Evaluate(tr, Config{Depth: 64})
	if r.Covered >= full.Covered {
		t.Errorf("bounded buffer coverage %d >= unbounded %d", r.Covered, full.Covered)
	}
}

func TestPerCPUSplitsHistory(t *testing.T) {
	// The same stream alternating between two CPUs: a shared engine links
	// occurrences across CPUs, per-CPU engines see half the recurrences.
	seq := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	tr := &trace.Trace{CPUs: 2}
	for occ := 0; occ < 8; occ++ {
		for _, b := range seq {
			tr.Append(trace.Miss{Addr: b << 6, CPU: uint8(occ % 2)})
		}
	}
	shared := Evaluate(tr, Config{Depth: 8})
	split := Evaluate(tr, Config{Depth: 8, PerCPU: true})
	if split.Covered >= shared.Covered {
		t.Errorf("per-cpu coverage %d >= shared %d; streams recur across CPUs",
			split.Covered, shared.Covered)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Evaluate(&trace.Trace{CPUs: 1}, Config{})
	if r.Coverage() != 0 || r.Accuracy() != 0 {
		t.Error("empty trace must yield zero metrics")
	}
}
