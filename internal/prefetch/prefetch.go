// Package prefetch evaluates temporal-stream prefetchers over the miss
// traces this repository collects. The paper characterizes temporal
// streams precisely because a family of prefetchers exploits them
// ("recording miss-address sequences in tables or circular buffers,
// locating a previously-seen sequence upon a subsequent miss, and then
// prefetching the recorded addresses", Section 2); this package implements
// that mechanism - a global history buffer with an address-correlating
// index, as in Nesbit & Smith's GHB and Wenisch et al.'s temporal
// streaming - and measures how much of a trace it covers.
//
// The evaluation is trace-driven and timing-free, consistent with the
// paper's methodology: a prefetch is counted as covering a miss if the
// missed address was among the lookahead addresses issued on an earlier
// miss and has not been evicted from the (finite) prefetch buffer since.
//
// Evaluation runs incrementally: an Evaluator consumes one miss at a time
// (Step), so the streaming pipeline can drive it directly from the
// simulator; Evaluate is the batch wrapper over a materialized trace. The
// hot structures are flat: the history is a power-of-two ring addressed by
// absolute position, the address-correlating index and the prefetch
// buffer are open-addressed hash tables, and the buffer's FIFO order is a
// ring — the same slab-and-ring pattern as internal/sequitur, with no map
// operations on the per-miss path.
package prefetch

import (
	"repro/internal/trace"
)

// Config sizes the prefetcher.
type Config struct {
	// HistoryLen bounds the global history buffer (misses remembered).
	// 0 means unbounded (idealized storage, as in the paper's analysis).
	HistoryLen int
	// Depth is the number of successor addresses fetched per stream
	// lookup (the fixed depth whose limits Section 4.4 discusses).
	Depth int
	// BufferBlocks bounds how many outstanding prefetched blocks are
	// buffered awaiting use; 0 means unbounded.
	BufferBlocks int
	// PerCPU evaluates one prefetcher per processor rather than a shared
	// one (the paper's streams recur across processors, so a shared
	// engine covers more).
	PerCPU bool
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 8
	}
	return c
}

// Result reports prefetcher effectiveness on one trace.
type Result struct {
	Misses     int // trace length
	Covered    int // misses whose block was in the prefetch buffer
	Issued     int // prefetches issued
	Used       int // prefetched blocks that were eventually used
	Discarded  int // prefetched blocks evicted unused (buffer pressure)
	LookupHits int // misses that found their address in the history index
}

// Coverage is the fraction of misses eliminated by prefetching.
func (r Result) Coverage() float64 {
	if r.Misses == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Misses)
}

// Accuracy is the fraction of issued prefetches that were used.
func (r Result) Accuracy() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Used) / float64(r.Issued)
}

// addrTable is a flat open-addressed hash table from block addresses to
// int64 payloads (history positions for the index; unused for the buffer,
// which needs only set semantics), with linear probing and tombstone
// deletion — the same design as sequitur's digram table. Addresses may
// legitimately be zero, so slot occupancy lives in the value (tabEmpty /
// tabDead sentinels), never the key.
type addrTable struct {
	keys []uint64
	vals []int64 // >= 0: payload; tabEmpty / tabDead otherwise
	used int     // live + tombstones
	live int
}

const (
	tabEmpty = int64(-1)
	tabDead  = int64(-2)
	tabMin   = 64
)

func newAddrTable() addrTable {
	t := addrTable{
		keys: make([]uint64, tabMin),
		vals: make([]int64, tabMin),
	}
	for i := range t.vals {
		t.vals[i] = tabEmpty
	}
	return t
}

// slot mixes the key over the table's current (power-of-two) size.
func (t *addrTable) slot(key uint64) uint32 {
	return uint32((key*0x9E3779B97F4A7C15)>>32) & uint32(len(t.keys)-1)
}

func (t *addrTable) get(key uint64) (int64, bool) {
	mask := uint32(len(t.keys) - 1)
	for i := t.slot(key); ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == tabEmpty {
			return 0, false
		}
		if v != tabDead && t.keys[i] == key {
			return v, true
		}
	}
}

func (t *addrTable) has(key uint64) bool {
	_, ok := t.get(key)
	return ok
}

// set inserts or overwrites the entry for key.
func (t *addrTable) set(key uint64, val int64) {
	if 4*(t.used+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	firstDead := int64(-1)
	for i := t.slot(key); ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == tabEmpty {
			if firstDead >= 0 {
				i = uint32(firstDead) // reuse the tombstone; used unchanged
			} else {
				t.used++
			}
			t.keys[i] = key
			t.vals[i] = val
			t.live++
			return
		}
		if v == tabDead {
			if firstDead < 0 {
				firstDead = int64(i)
			}
			continue
		}
		if t.keys[i] == key {
			t.vals[i] = val
			return
		}
	}
}

func (t *addrTable) del(key uint64) {
	mask := uint32(len(t.keys) - 1)
	for i := t.slot(key); ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == tabEmpty {
			return
		}
		if v != tabDead && t.keys[i] == key {
			t.vals[i] = tabDead
			t.live--
			return
		}
	}
}

// grow rehashes into a table sized for the live entries, clearing
// tombstones.
func (t *addrTable) grow() {
	size := len(t.keys)
	if 2*t.live >= size {
		size *= 2 // genuinely full: double
	} // else: same size, just purge tombstones
	ok, ov := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([]int64, size)
	for i := range t.vals {
		t.vals[i] = tabEmpty
	}
	t.used, t.live = 0, 0
	mask := uint32(size - 1)
	for i, v := range ov {
		if v < 0 {
			continue
		}
		key := ok[i]
		for j := t.slot(key); ; j = (j + 1) & mask {
			if t.vals[j] == tabEmpty {
				t.keys[j] = key
				t.vals[j] = v
				t.used++
				t.live++
				break
			}
		}
	}
}

// addrRing is a growable power-of-two FIFO of block addresses.
type addrRing struct {
	buf  []uint64
	head int // index of the oldest entry
	n    int
}

func (r *addrRing) push(v uint64) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = tabMin
		}
		nb := make([]uint64, size)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *addrRing) pop() uint64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// engine is one prefetcher instance. The global history buffer is a ring
// addressed by absolute miss position: position p lives at hist[p&mask],
// positions [head, head+count) are retained, and the index maps each
// address to the absolute position of its most recent occurrence.
type engine struct {
	cfg    Config
	hist   []uint64  // power-of-two ring of recorded addresses
	head   int       // absolute position of the oldest retained entry
	count  int       // retained entries
	index  addrTable // address -> most recent absolute history position
	buffer addrTable // prefetched blocks outstanding (set semantics)
	fifo   addrRing  // issue order of buffered blocks (may hold stale entries)
}

func newEngine(cfg Config) *engine {
	return &engine{
		cfg:    cfg,
		hist:   make([]uint64, tabMin),
		index:  newAddrTable(),
		buffer: newAddrTable(),
	}
}

// histAt returns the recorded address at absolute position p, which must
// lie in [head, head+count).
func (e *engine) histAt(p int) uint64 { return e.hist[p&(len(e.hist)-1)] }

// observe processes one access from the baseline miss trace: check the
// buffer, and on a (still-)miss consult the history and issue lookahead
// prefetches. Covered accesses are hits in the deployed system: they are
// recorded in the history (the stream engine observes fills) but do not
// trigger a new lookup - which is exactly why fixed-depth designs pay one
// off-chip lookup every Depth misses and why long streams amortize that
// cost (Section 4.4).
func (e *engine) observe(addr uint64, r *Result) {
	// 1. Did an earlier prefetch cover this miss?
	if e.buffer.has(addr) {
		r.Covered++
		r.Used++
		e.buffer.del(addr)
		e.record(addr)
		return
	}

	// 2. Address-correlating lookup: find this address's previous
	// occurrence and prefetch the Depth misses that followed it.
	if pos, ok := e.index.get(addr); ok {
		r.LookupHits++
		for i := 1; i <= e.cfg.Depth; i++ {
			j := int(pos) + i
			if j < e.head || j >= e.head+e.count {
				break
			}
			p := e.histAt(j)
			if p == addr {
				continue
			}
			if e.buffer.has(p) {
				continue
			}
			e.buffer.set(p, 0)
			e.fifo.push(p)
			r.Issued++
		}
		// Enforce the buffer bound FIFO (oldest unused prefetch dropped;
		// fifo entries whose block was covered meanwhile are stale and
		// skipped).
		if e.cfg.BufferBlocks > 0 {
			for e.buffer.live > e.cfg.BufferBlocks && e.fifo.n > 0 {
				victim := e.fifo.pop()
				if e.buffer.has(victim) {
					e.buffer.del(victim)
					r.Discarded++
				}
			}
		}
	}

	// 3. Record the miss.
	e.record(addr)
}

// record appends one observed address to the global history buffer,
// evicting the oldest retained entry once the configured bound is reached.
func (e *engine) record(addr uint64) {
	if e.cfg.HistoryLen > 0 && e.count == e.cfg.HistoryLen {
		// Drop the oldest entry; its index slot is removed only if no
		// newer occurrence of the same address has overwritten it.
		old := e.histAt(e.head)
		if v, ok := e.index.get(old); ok && int(v) == e.head {
			e.index.del(old)
		}
		e.head++
		e.count--
	}
	if e.count == len(e.hist) {
		// Re-place every retained entry under the doubled mask, keeping
		// absolute positions stable.
		nb := make([]uint64, len(e.hist)*2)
		for p := e.head; p < e.head+e.count; p++ {
			nb[p&(len(nb)-1)] = e.histAt(p)
		}
		e.hist = nb
	}
	pos := e.head + e.count
	e.index.set(addr, int64(pos))
	e.hist[pos&(len(e.hist)-1)] = addr
	e.count++
}

// Evaluator runs a configured prefetcher incrementally: Step consumes one
// miss at a time (in trace order), Result reports the counters accumulated
// so far. The streaming collection pipeline drives an Evaluator directly
// from the simulator's miss stream; Evaluate is the batch wrapper.
type Evaluator struct {
	cfg     Config
	shared  *engine
	engines []*engine // per-CPU engines, allocated on first sight (PerCPU)
	res     Result
}

// NewEvaluator returns an Evaluator for cfg with empty history.
func NewEvaluator(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	ev := &Evaluator{cfg: cfg}
	if !cfg.PerCPU {
		ev.shared = newEngine(cfg)
	}
	return ev
}

// Step consumes the next miss of the stream.
func (ev *Evaluator) Step(m trace.Miss) {
	ev.res.Misses++
	e := ev.shared
	if ev.cfg.PerCPU {
		if int(m.CPU) >= len(ev.engines) {
			ev.engines = append(ev.engines, make([]*engine, int(m.CPU)+1-len(ev.engines))...)
		}
		if e = ev.engines[m.CPU]; e == nil {
			e = newEngine(ev.cfg)
			ev.engines[m.CPU] = e
		}
	}
	e.observe(m.Addr, &ev.res)
}

// Result returns the counters accumulated so far.
func (ev *Evaluator) Result() Result { return ev.res }

// Evaluate runs the configured prefetcher over tr and reports coverage.
func Evaluate(tr *trace.Trace, cfg Config) Result {
	ev := NewEvaluator(cfg)
	for i := range tr.Misses {
		ev.Step(tr.Misses[i])
	}
	return ev.Result()
}

// DepthSweep evaluates several lookahead depths over the same trace,
// reproducing the trade-off of Section 4.4 (fixed depths truncate long
// streams; see BenchmarkAblationFixedDepth for the analytical version).
func DepthSweep(tr *trace.Trace, depths []int, base Config) []Result {
	out := make([]Result, 0, len(depths))
	for _, d := range depths {
		cfg := base
		cfg.Depth = d
		out = append(out, Evaluate(tr, cfg))
	}
	return out
}
