// Package prefetch evaluates temporal-stream prefetchers over the miss
// traces this repository collects. The paper characterizes temporal
// streams precisely because a family of prefetchers exploits them
// ("recording miss-address sequences in tables or circular buffers,
// locating a previously-seen sequence upon a subsequent miss, and then
// prefetching the recorded addresses", Section 2); this package implements
// that mechanism - a global history buffer with an address-correlating
// index, as in Nesbit & Smith's GHB and Wenisch et al.'s temporal
// streaming - and measures how much of a trace it covers.
//
// The evaluation is trace-driven and timing-free, consistent with the
// paper's methodology: a prefetch is counted as covering a miss if the
// missed address was among the lookahead addresses issued on an earlier
// miss and has not been evicted from the (finite) prefetch buffer since.
package prefetch

import (
	"repro/internal/trace"
)

// Config sizes the prefetcher.
type Config struct {
	// HistoryLen bounds the global history buffer (misses remembered).
	// 0 means unbounded (idealized storage, as in the paper's analysis).
	HistoryLen int
	// Depth is the number of successor addresses fetched per stream
	// lookup (the fixed depth whose limits Section 4.4 discusses).
	Depth int
	// BufferBlocks bounds how many outstanding prefetched blocks are
	// buffered awaiting use; 0 means unbounded.
	BufferBlocks int
	// PerCPU evaluates one prefetcher per processor rather than a shared
	// one (the paper's streams recur across processors, so a shared
	// engine covers more).
	PerCPU bool
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = 8
	}
	return c
}

// Result reports prefetcher effectiveness on one trace.
type Result struct {
	Misses     int // trace length
	Covered    int // misses whose block was in the prefetch buffer
	Issued     int // prefetches issued
	Used       int // prefetched blocks that were eventually used
	Discarded  int // prefetched blocks evicted unused (buffer pressure)
	LookupHits int // misses that found their address in the history index
}

// Coverage is the fraction of misses eliminated by prefetching.
func (r Result) Coverage() float64 {
	if r.Misses == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Misses)
}

// Accuracy is the fraction of issued prefetches that were used.
func (r Result) Accuracy() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Used) / float64(r.Issued)
}

// engine is one prefetcher instance.
type engine struct {
	cfg     Config
	history []uint64       // global history buffer (miss addresses)
	index   map[uint64]int // address -> most recent history position
	buffer  map[uint64]int // prefetched block -> issue order (for FIFO eviction)
	fifo    []uint64       // issue order of buffered blocks
	headPos int            // history eviction cursor (ring base index)
}

func newEngine(cfg Config) *engine {
	return &engine{
		cfg:    cfg,
		index:  make(map[uint64]int),
		buffer: make(map[uint64]int),
	}
}

// observe processes one access from the baseline miss trace: check the
// buffer, and on a (still-)miss consult the history and issue lookahead
// prefetches. Covered accesses are hits in the deployed system: they are
// recorded in the history (the stream engine observes fills) but do not
// trigger a new lookup - which is exactly why fixed-depth designs pay one
// off-chip lookup every Depth misses and why long streams amortize that
// cost (Section 4.4).
func (e *engine) observe(addr uint64, r *Result) {
	// 1. Did an earlier prefetch cover this miss?
	if _, ok := e.buffer[addr]; ok {
		r.Covered++
		r.Used++
		delete(e.buffer, addr)
		e.record(addr)
		return
	}

	// 2. Address-correlating lookup: find this address's previous
	// occurrence and prefetch the Depth misses that followed it.
	if pos, ok := e.index[addr]; ok {
		r.LookupHits++
		base := pos - e.headPos // position within the current slice
		for i := 1; i <= e.cfg.Depth; i++ {
			j := base + i
			if j < 0 || j >= len(e.history) {
				break
			}
			p := e.history[j]
			if p == addr {
				continue
			}
			if _, buffered := e.buffer[p]; buffered {
				continue
			}
			e.buffer[p] = r.Issued
			e.fifo = append(e.fifo, p)
			r.Issued++
		}
		// Enforce the buffer bound FIFO (oldest unused prefetch dropped).
		if e.cfg.BufferBlocks > 0 {
			for len(e.buffer) > e.cfg.BufferBlocks && len(e.fifo) > 0 {
				victim := e.fifo[0]
				e.fifo = e.fifo[1:]
				if _, ok := e.buffer[victim]; ok {
					delete(e.buffer, victim)
					r.Discarded++
				}
			}
		}
	}

	// 3. Record the miss.
	e.record(addr)
}

// record appends one observed address to the global history buffer.
func (e *engine) record(addr uint64) {
	e.index[addr] = e.headPos + len(e.history)
	e.history = append(e.history, addr)
	if e.cfg.HistoryLen > 0 && len(e.history) > e.cfg.HistoryLen {
		// Drop the oldest entry; stale index entries are detected by
		// range checks during lookup.
		old := e.history[0]
		if e.index[old] == e.headPos {
			delete(e.index, old)
		}
		e.history = e.history[1:]
		e.headPos++
	}
}

// Evaluate runs the configured prefetcher over tr and reports coverage.
func Evaluate(tr *trace.Trace, cfg Config) Result {
	cfg = cfg.withDefaults()
	var r Result
	r.Misses = len(tr.Misses)
	if cfg.PerCPU {
		engines := make(map[uint8]*engine)
		for i := range tr.Misses {
			m := tr.Misses[i]
			e := engines[m.CPU]
			if e == nil {
				e = newEngine(cfg)
				engines[m.CPU] = e
			}
			e.observe(m.Addr, &r)
		}
		return r
	}
	e := newEngine(cfg)
	for i := range tr.Misses {
		e.observe(tr.Misses[i].Addr, &r)
	}
	return r
}

// DepthSweep evaluates several lookahead depths over the same trace,
// reproducing the trade-off of Section 4.4 (fixed depths truncate long
// streams; see BenchmarkAblationFixedDepth for the analytical version).
func DepthSweep(tr *trace.Trace, depths []int, base Config) []Result {
	out := make([]Result, 0, len(depths))
	for _, d := range depths {
		cfg := base
		cfg.Depth = d
		out = append(out, Evaluate(tr, cfg))
	}
	return out
}
