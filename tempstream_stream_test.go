package tempstream

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/prefetch"
)

// streamPfCfg exercises every bounded structure of the prefetch engine in
// the equivalence sweep.
var streamPfCfg = prefetch.Config{Depth: 8, HistoryLen: 20000, BufferBlocks: 2048}

// TestStreamingMatchesBatchAllApps is the tentpole's equivalence guard:
// CollectStreaming must reproduce Collect field for field — per-context
// headers, every per-miss analysis field, the distribution summaries, and
// the prefetch counters — for every application. The batch side reuses the
// shared experiment cache, so the streaming runs are the only extra
// simulations.
func TestStreamingMatchesBatchAllApps(t *testing.T) {
	apps := Apps()
	if testing.Short() {
		apps = apps[:1] // one app keeps -short sweeps fast; CI race runs all
	}
	for _, app := range apps {
		batch := collect(t, app)
		stream := CollectStreaming(app, Small, 1, 35000, StreamOptions{Prefetch: &streamPfCfg})
		for _, ctx := range Contexts() {
			b, s := batch.Context(ctx), stream.Context(ctx)
			if s.Trace != nil {
				t.Errorf("%v %v: streaming result materialized a trace", app, ctx)
			}
			if want := headerOf(b.Trace); s.Header != want {
				t.Errorf("%v %v: header %+v, want %+v", app, ctx, s.Header, want)
			}
			ba, sa := b.Analysis, s.Analysis
			if len(sa.Misses) != len(ba.Misses) {
				t.Fatalf("%v %v: window %d vs %d misses", app, ctx, len(sa.Misses), len(ba.Misses))
			}
			if !reflect.DeepEqual(sa.Misses, ba.Misses) {
				t.Errorf("%v %v: analysis windows differ", app, ctx)
			}
			if !reflect.DeepEqual(sa.State, ba.State) {
				t.Errorf("%v %v: per-miss stream states differ", app, ctx)
			}
			if !reflect.DeepEqual(sa.Strided, ba.Strided) {
				t.Errorf("%v %v: stride flags differ", app, ctx)
			}
			if !reflect.DeepEqual(sa.Instances, ba.Instances) {
				t.Errorf("%v %v: stream instances differ (%d vs %d)",
					app, ctx, len(sa.Instances), len(ba.Instances))
			}
			if !reflect.DeepEqual(sa.ReuseDist.Buckets(), ba.ReuseDist.Buckets()) {
				t.Errorf("%v %v: reuse-distance histograms differ", app, ctx)
			}
			if sa.MedianStreamLength() != ba.MedianStreamLength() {
				t.Errorf("%v %v: median stream length %v vs %v",
					app, ctx, sa.MedianStreamLength(), ba.MedianStreamLength())
			}
			if sa.GrammarRules() != ba.GrammarRules() {
				t.Errorf("%v %v: grammar rules %d vs %d", app, ctx, sa.GrammarRules(), ba.GrammarRules())
			}
			if s.Prefetch == nil {
				t.Fatalf("%v %v: no prefetch counters", app, ctx)
			}
			if want := prefetch.Evaluate(b.Trace, streamPfCfg); *s.Prefetch != want {
				t.Errorf("%v %v: prefetch counters %+v, want %+v", app, ctx, *s.Prefetch, want)
			}
		}
	}
}

// TestStreamingKeepTraces checks the KeepTraces escape hatch: the
// materialized streaming traces must be byte-identical to the batch ones.
func TestStreamingKeepTraces(t *testing.T) {
	batch := collect(t, Apache)
	stream := CollectStreaming(Apache, Small, 1, 35000, StreamOptions{KeepTraces: true})
	for _, ctx := range Contexts() {
		b, s := batch.Context(ctx), stream.Context(ctx)
		if s.Trace == nil {
			t.Fatalf("%v: KeepTraces produced no trace", ctx)
		}
		if !reflect.DeepEqual(s.Trace.Misses, b.Trace.Misses) {
			t.Errorf("%v: materialized streaming trace differs from batch", ctx)
		}
		if s.Trace.Instructions != b.Trace.Instructions || s.Trace.CPUs != b.Trace.CPUs {
			t.Errorf("%v: trace header %d/%d vs %d/%d", ctx,
				s.Trace.Instructions, s.Trace.CPUs, b.Trace.Instructions, b.Trace.CPUs)
		}
	}
}

// streamAllocBytes measures the heap bytes one streaming collection
// allocates end to end.
func streamAllocBytes(target int, opts StreamOptions) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	CollectStreaming(OLTP, Small, 9, target, opts)
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamingBoundedMemory pins the O(window) memory claim at the
// pipeline level: with a fixed analysis window, quadrupling the miss
// target must not proportionally grow the bytes a streaming collection
// allocates — the extra misses stream through gates and a full analyzer
// window without materializing anywhere.
func TestStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping memory-growth sweep in short mode")
	}
	opts := StreamOptions{Analysis: core.Options{MaxMisses: 4000}}
	streamAllocBytes(6000, opts) // warm pools and lazily-grown storage
	base := streamAllocBytes(6000, opts)
	big := streamAllocBytes(4*6000, opts)
	t.Logf("allocated bytes: base(6k)=%d big(24k)=%d ratio=%.2f", base, big, float64(big)/float64(base))
	// A materializing pipeline would scale these bytes with the target
	// (4x the measurement plus 40x intra-chip records). Allow generous
	// headroom for fixed per-run setup noise, but reject linear growth.
	if big > 2*base {
		t.Errorf("streaming allocations grew with trace length: %d -> %d bytes (>2x) for a 4x target", base, big)
	}
}
