package tempstream

import (
	"context"
	"errors"
	"testing"
)

// TestRunnerRunMatchesDeprecatedCollect pins the migration contract: a
// Runner with its own pool, given a KeepTraces request, must produce the
// experiment the deprecated batch entrypoint produces — field for field,
// traces included. (The deprecated entrypoint is itself pinned against
// the strictly serial reference by TestConcurrentCollectMatchesSerial,
// so this transitively pins Runner.Run to the seed semantics.)
func TestRunnerRunMatchesDeprecatedCollect(t *testing.T) {
	want := collect(t, Apache)
	r := NewRunner(WithWorkers(2))
	got, err := r.Run(context.Background(), Request{
		App: Apache, Scale: Small, Seed: 1, TargetMisses: 35000, KeepTraces: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	compareExperiments(t, got, want)
}

// TestRunnerStreamingResultShape checks Run's native (no KeepTraces)
// mode: no traces anywhere, headers folded, all contexts analyzed.
func TestRunnerStreamingResultShape(t *testing.T) {
	exp, err := NewRunner().Run(context.Background(), Request{
		App: Apache, Scale: Small, Seed: 1, TargetMisses: 4000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if exp.MultiChip.OffChip != nil || exp.SingleChip.OffChip != nil || exp.SingleChip.IntraChip != nil {
		t.Errorf("streaming Run materialized raw traces")
	}
	for _, c := range Contexts() {
		cr := exp.Context(c)
		if cr == nil || cr.Analysis == nil {
			t.Fatalf("context %v missing", c)
		}
		if cr.Trace != nil {
			t.Errorf("context %v kept a trace without KeepTraces", c)
		}
		if cr.Header.Misses == 0 || cr.Header.CPUs == 0 {
			t.Errorf("context %v header not folded: %+v", c, cr.Header)
		}
	}
}

// TestRunAllYieldsEveryRequest checks the fan-out contract: every
// request yields exactly once (completion order, any order), with nil
// errors and the right app on each experiment.
func TestRunAllYieldsEveryRequest(t *testing.T) {
	reqs := []Request{
		{App: Apache, Scale: Small, Seed: 2, TargetMisses: 2500},
		{App: OLTP, Scale: Small, Seed: 2, TargetMisses: 2500},
	}
	seen := map[App]int{}
	for exp, err := range NewRunner().RunAll(context.Background(), reqs...) {
		if err != nil {
			t.Fatalf("RunAll yielded error: %v", err)
		}
		seen[exp.App]++
	}
	if seen[Apache] != 1 || seen[OLTP] != 1 || len(seen) != 2 {
		t.Errorf("RunAll yields = %v, want exactly one per request", seen)
	}
}

// TestRunAllEmpty: zero requests yield nothing and return immediately.
func TestRunAllEmpty(t *testing.T) {
	for range NewRunner().RunAll(context.Background()) {
		t.Fatal("RunAll with no requests yielded")
	}
}

// TestRunPreCancelled: a context cancelled before Run starts fails fast,
// before any simulation is constructed.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, err := NewRunner().Run(ctx, Request{App: OLTP, Scale: Small, Seed: 1, TargetMisses: 100000})
	if exp != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = (%v, %v), want (nil, context.Canceled)", exp, err)
	}
}

// TestExperimentContextOutOfRange is the regression test for the
// Context accessor: out-of-range contexts must return nil, mirroring
// Context.String's "invalid context" rendering, instead of panicking.
func TestExperimentContextOutOfRange(t *testing.T) {
	exp := &Experiment{}
	for _, c := range []Context{-1, NumContexts, NumContexts + 7} {
		if got := exp.Context(c); got != nil {
			t.Errorf("Context(%d) = %v, want nil", c, got)
		}
		if got := c.String(); got != "invalid context" {
			t.Errorf("Context(%d).String() = %q, want %q", c, got, "invalid context")
		}
	}
	// In-range contexts still index the array directly.
	exp.Contexts[IntraChipCtx] = &ContextResult{}
	if exp.Context(IntraChipCtx) != exp.Contexts[IntraChipCtx] {
		t.Errorf("Context(IntraChipCtx) does not return the stored result")
	}
}
