package tempstream

import (
	"context"
	"iter"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Request selects one experiment: which application to simulate, at what
// scale and seed, and what the analyses should compute. The zero value
// of every tuning field is the package default, so
// Request{App: OLTP} is a complete request.
type Request struct {
	App   App
	Scale Scale
	// Seed makes runs reproducible: the same Request always yields the
	// same Experiment, byte for byte, regardless of worker count.
	Seed int64
	// TargetMisses is the number of off-chip misses to collect per
	// machine after warmup (0 = workload.DefaultTargetMisses).
	TargetMisses int
	// WarmMisses is the number of off-chip misses to discard as warmup
	// (0 = a scale-derived default that refills every L2 in the system).
	WarmMisses int
	// Analysis tunes the per-context stream analyses (window size, reuse
	// truncation).
	Analysis core.Options
	// Prefetch, when non-nil, additionally evaluates a temporal-stream
	// prefetcher over each context's miss stream as it is produced.
	Prefetch *prefetch.Config
	// KeepTraces materializes the per-context traces (ContextResult.Trace
	// and the raw workload results' OffChip/IntraChip), costing O(trace)
	// memory: the batch semantics of the deprecated entrypoints. Off by
	// default — results then carry only headers and analyses, and peak
	// memory is bounded by the analysis window.
	KeepTraces bool
	// PipelineDepth selects intra-run parallelism for this request:
	// simulation and analysis are decoupled through a bounded SPSC chunk
	// ring (trace.Pipelined) of this depth, so the simulator's emission
	// overlaps the analyses on another core, and the session's independent
	// consumers are sharded (StreamOptions.ShardConsumers). Results are
	// byte-identical to the serial drive — the pipeline reorders nothing —
	// so this is purely a throughput knob for multi-core hosts.
	//
	// 0 defers to the Runner's default (WithIntraParallelism; serial if
	// unset); > 0 pipelines with that ring depth in chunks; < 0 forces the
	// serial drive even on a pipelining Runner.
	PipelineDepth int
}

// config returns the workload configuration for one machine.
func (req Request) config(m workload.MachineKind) workload.Config {
	return workload.Config{
		App: req.App, Machine: m, Scale: req.Scale,
		Seed: req.Seed, TargetMisses: req.TargetMisses, WarmMisses: req.WarmMisses,
	}
}

// stream returns the per-context consumer options.
func (req Request) stream() StreamOptions {
	return StreamOptions{Analysis: req.Analysis, Prefetch: req.Prefetch, KeepTraces: req.KeepTraces}
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers bounds the number of simulations the Runner executes
// concurrently (the Runner's own pool — independent Runners never
// contend). n < 1 selects the default of GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(r *Runner) { r.pool = par.NewPool(n) }
}

// WithIntraParallelism makes the Runner pipeline every request by
// default: simulate→analyze decoupled over a depth-chunk SPSC ring with
// sharded session consumers (see Request.PipelineDepth, which overrides
// this per request). depth < 1 selects trace.DefaultPipeDepth. Results
// are byte-identical to the serial drive; on a single-core host the
// knob costs only the chunk handoffs.
func WithIntraParallelism(depth int) Option {
	if depth < 1 {
		depth = trace.DefaultPipeDepth
	}
	return func(r *Runner) { r.pipeDepth = depth }
}

// Runner executes experiment Requests over its own bounded worker pool.
// Create one with NewRunner and share it: a Runner is safe for
// concurrent use, and all of its Run/RunAll calls schedule on the same
// pool, so a service can cap its total simulation concurrency in one
// place without process-global state.
//
// The zero Runner is also valid: it schedules on the process-wide
// default pool (the one the deprecated SetWorkers tunes), which is what
// the deprecated entrypoints use.
type Runner struct {
	pool      *par.Pool // nil = process-wide default pool
	pipeDepth int       // default intra-run pipeline depth; 0 = serial
}

// NewRunner returns a Runner with its own worker pool (default
// GOMAXPROCS wide; see WithWorkers).
func NewRunner(opts ...Option) *Runner {
	r := &Runner{}
	for _, o := range opts {
		o(r)
	}
	if r.pool == nil {
		r.pool = par.NewPool(0)
	}
	return r
}

// Workers returns the Runner's concurrency bound.
func (r *Runner) Workers() int {
	if r.pool == nil {
		return par.Workers()
	}
	return r.pool.Workers()
}

// Run executes one Request: both machine simulations run concurrently on
// the Runner's pool, each streaming its classified misses straight into
// per-context Session sinks (incremental analyzer + optional prefetcher
// + optional kept trace), so analysis overlaps simulation and peak
// memory is bounded by the analysis window unless traces are kept. With
// intra-run parallelism (Request.PipelineDepth / WithIntraParallelism)
// each stream additionally crosses an SPSC chunk ring, overlapping the
// simulator with its analyses on further cores — byte-identical
// results either way.
//
// Cancelling ctx stops each in-flight simulation within one engine step;
// Run then returns ctx's error with every pooled analyzer returned and
// no goroutines left behind. A nil error guarantees a complete
// Experiment: all three contexts analyzed, headers folded.
func (r *Runner) Run(ctx context.Context, req Request) (*Experiment, error) {
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	expect := req.TargetMisses
	if expect == 0 {
		expect = workload.DefaultTargetMisses
	}
	depth := req.PipelineDepth
	if depth == 0 {
		depth = r.pipeDepth
	}
	opts := req.stream()
	if depth > 0 {
		// Pipelined requests also shard each session's independent
		// consumers: the second cut of intra-run parallelism, with the
		// same byte-identical-results contract.
		opts.ShardConsumers = true
	}
	// pipe wraps a session in the SPSC pipeline when the request asks for
	// it; serial requests drive the session directly.
	pipe := func(s *Session) (trace.Sink, *trace.Pipelined) {
		if depth <= 0 {
			return s, nil
		}
		p := trace.NewPipelined(s, depth)
		return p, p
	}
	exp := &Experiment{App: req.App, Scale: req.Scale, Stages: &StageStats{}}
	var mcErr, scErr error
	g := par.Group{Pool: r.pool}
	g.GoCtx(ctx, func() {
		start := time.Now()
		s := NewSession(workload.MultiChip.CPUCount(), expect, opts)
		sink, p := pipe(s)
		res, err := workload.RunStreamContext(ctx, req.config(workload.MultiChip), sink, nil)
		if p != nil {
			// Drain the ring before touching the session: after this the
			// session has seen every record (and, on success, the Finish).
			p.Close()
			exp.Stages.Pipeline[MultiChipCtx] = p.Stats()
		}
		exp.Stages.MultiChipSimSeconds = time.Since(start).Seconds()
		exp.Stages.AnalyzeSeconds[MultiChipCtx] = s.BusySeconds()
		if err != nil {
			mcErr = err
			s.Close()
			return
		}
		cr := s.Result(res.SymTab)
		if req.KeepTraces {
			res.OffChip = cr.Trace
		}
		exp.MultiChip = res
		exp.Contexts[MultiChipCtx] = cr
	})
	g.GoCtx(ctx, func() {
		start := time.Now()
		off := NewSession(workload.SingleChip.CPUCount(), expect, opts)
		// The intra-chip stream runs up to 40x the off-chip target (the
		// workload runner's measurement cap).
		intra := NewSession(workload.SingleChip.CPUCount(), 40*expect, opts)
		offSink, offP := pipe(off)
		intraSink, intraP := pipe(intra)
		res, err := workload.RunStreamContext(ctx, req.config(workload.SingleChip), offSink, intraSink)
		if offP != nil {
			offP.Close()
			intraP.Close()
			exp.Stages.Pipeline[SingleChipCtx] = offP.Stats()
			exp.Stages.Pipeline[IntraChipCtx] = intraP.Stats()
		}
		exp.Stages.SingleChipSimSeconds = time.Since(start).Seconds()
		exp.Stages.AnalyzeSeconds[SingleChipCtx] = off.BusySeconds()
		exp.Stages.AnalyzeSeconds[IntraChipCtx] = intra.BusySeconds()
		if err != nil {
			scErr = err
			off.Close()
			intra.Close()
			return
		}
		offCR := off.Result(res.SymTab)
		intraCR := intra.Result(res.SymTab)
		if req.KeepTraces {
			res.OffChip = offCR.Trace
			res.IntraChip = intraCR.Trace
		}
		exp.SingleChip = res
		exp.Contexts[SingleChipCtx] = offCR
		exp.Contexts[IntraChipCtx] = intraCR
	})
	g.Wait()
	// A cancelled context may also have skipped a task before it ever
	// acquired a slot (GoCtx), so check it before the per-task errors.
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	if mcErr != nil {
		return nil, mcErr
	}
	if scErr != nil {
		return nil, scErr
	}
	return exp, nil
}

// RunAll executes the Requests concurrently over the Runner's pool and
// yields each (*Experiment, error) pair as its request completes —
// completion order, not request order — so a consumer can report,
// persist, or aggregate results while slower simulations are still
// running instead of blocking on the full slice. Each pair is one
// request's Run result; on cancellation the remaining requests yield
// (nil, ctx's error).
//
// Breaking out of the range is clean: the remaining requests are
// cancelled, their simulations stop within one engine step, and no
// goroutines are left behind.
func (r *Runner) RunAll(ctx context.Context, reqs ...Request) iter.Seq2[*Experiment, error] {
	return func(yield func(*Experiment, error) bool) {
		if len(reqs) == 0 {
			return
		}
		// Derived cancel scope: an early break from the range tears the
		// remaining work down.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type done struct {
			exp *Experiment
			err error
		}
		// Buffered to len(reqs): a producer can always deliver, so an
		// abandoned iterator leaks nothing.
		ch := make(chan done, len(reqs))
		for _, req := range reqs {
			// One orchestrating goroutine per request; only the machine
			// simulations inside Run hold pool slots, so fan-out breadth
			// never deadlocks the pool (see par.Group).
			go func() {
				exp, err := r.Run(ctx, req)
				ch <- done{exp, err}
			}()
		}
		for range reqs {
			d := <-ch
			if !yield(d.exp, d.err) {
				return
			}
		}
	}
}
