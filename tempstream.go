// Package tempstream reproduces "Temporal Streams in Commercial Server
// Applications" (Wenisch et al., IISWC 2008): it simulates the paper's six
// commercial workloads on the two machine organizations, collects
// classified off-chip and intra-chip read-miss traces, and runs the
// SEQUITUR-based temporal-stream analyses behind every figure and table in
// the paper's evaluation.
//
// Quick start — the Runner is the package's one entrypoint: a Request in,
// an Experiment out, with the whole pipeline bound to a context:
//
//	r := tempstream.NewRunner()
//	exp, err := r.Run(ctx, tempstream.Request{
//		App: tempstream.OLTP, Scale: tempstream.Small, Seed: 1, TargetMisses: 30000,
//	})
//	if err != nil { ... } // ctx cancelled mid-simulation
//	fmt.Println(exp.Context(tempstream.MultiChipCtx).Analysis.StreamFraction())
//
// Streaming is the one execution engine: the analyses consume the miss
// stream as the simulators produce it, so nothing is materialized and
// peak memory is bounded by the analysis window instead of the trace.
// Request.KeepTraces additionally materializes the per-context traces,
// recovering the batch results of the deprecated Collect entrypoints
// field for field.
//
// Sweeps fan out with RunAll, which yields experiments as they complete:
//
//	for exp, err := range r.RunAll(ctx, reqs...) { ... }
//
// The streaming consumer behind Run is exported as Session (a trace.Sink
// over a pooled incremental analyzer), so other producers — the tsserved
// ingest daemon's network sessions (internal/server), wire-format archive
// replays (internal/wire) — feed the identical machinery.
//
// The analyses are hardware-independent (Section 3 of the paper): streams
// are identified by SEQUITUR grammar inference over the miss-address
// sequence, with no assumptions about any particular prefetcher.
//
// # Cancellation
//
// Every Runner method takes a context, and the context reaches the
// execution engine's per-step stop predicates (internal/engine), so
// cancelling a sweep stops each in-flight simulation within one engine
// step. Cancelled runs return the context's error, leak no goroutines,
// and return every pooled analyzer. A context that can never be
// cancelled (context.Background()) adds no per-step work.
//
// # Concurrency
//
// Each Runner owns a bounded worker pool (WithWorkers; default
// GOMAXPROCS): Run executes the two machine simulations concurrently on
// it, and RunAll additionally overlaps requests, yielding each
// experiment as it completes. Results are byte-for-byte deterministic
// for a given seed regardless of the worker count: every simulation
// seeds its own RNGs and every analysis is a pure function of its miss
// stream. Analyses borrow core.Analyzer instances from an internal pool,
// so grammar and scratch storage is reused across contexts, requests,
// and Runners.
package tempstream

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported workload identifiers, so that the public API is
// self-contained.
const (
	Apache = workload.Apache
	Zeus   = workload.Zeus
	OLTP   = workload.OLTP
	Qry1   = workload.Qry1
	Qry2   = workload.Qry2
	Qry17  = workload.Qry17
)

// Scales.
const (
	Small  = workload.Small
	Medium = workload.Medium
	Large  = workload.Large
)

// App identifies one of the six applications (Table 1).
type App = workload.App

// Scale selects cache/footprint sizing (ratios follow the paper).
type Scale = workload.Scale

// Apps returns the applications in the paper's presentation order.
func Apps() []App { return workload.Apps() }

// Context is one of the paper's three analysis contexts (Section 3,
// "System contexts").
type Context int

const (
	// MultiChipCtx: off-chip misses of the 16-node DSM.
	MultiChipCtx Context = iota
	// SingleChipCtx: off-chip misses of the 4-core CMP.
	SingleChipCtx
	// IntraChipCtx: L1 misses of the CMP satisfied on chip.
	IntraChipCtx

	// NumContexts is the number of analysis contexts.
	NumContexts
)

var contextNames = [NumContexts]string{"multi-chip", "single-chip", "intra-chip"}

func (c Context) String() string {
	if c >= 0 && c < NumContexts {
		return contextNames[c]
	}
	return "invalid context"
}

// Contexts returns all three contexts in the paper's presentation order.
func Contexts() []Context { return []Context{MultiChipCtx, SingleChipCtx, IntraChipCtx} }

// ContextResult is one context's stream analysis plus, when the request
// kept traces, its classified trace.
type ContextResult struct {
	// Trace is the materialized miss trace. It is nil unless the
	// collection requested KeepTraces: the records were consumed as they
	// were produced.
	Trace *trace.Trace
	// Header carries the context's window totals (misses emitted,
	// instructions retired, CPUs) whether or not the trace was kept.
	Header   trace.Header
	Analysis *core.Analysis
	// Prefetch holds the temporal-stream prefetcher evaluation when one
	// was requested (Request.Prefetch); nil otherwise.
	Prefetch *prefetch.Result
	SymTab   *trace.SymbolTable
}

// Experiment bundles the three context analyses of one application.
type Experiment struct {
	App   App
	Scale Scale
	// Contexts holds the per-context results, indexed by Context.
	Contexts [NumContexts]*ContextResult
	// MultiChip and SingleChip expose the raw run results (MPKI,
	// footprints, kernel statistics).
	MultiChip  *workload.Result
	SingleChip *workload.Result
	// Stages traces where the run's wall-clock went (simulate vs analyze
	// per machine and context, pipeline stall counters). Always populated
	// by Runner.Run; nil on experiments built by other paths (deprecated
	// batch entrypoints, hand-assembled tests).
	Stages *StageStats
}

// StageStats is one run's stage-level trace: the simulate/analyze
// wall-clock split and, for pipelined runs, the SPSC ring counters that
// say which side stalled. It answers "where did this run's time go"
// without a profiler — tsbench folds the counters into BENCH artifacts,
// and the /metrics totals on long-running processes aggregate the same
// numbers fleet-wide.
type StageStats struct {
	// MultiChipSimSeconds and SingleChipSimSeconds are each machine
	// task's wall-clock: simulation plus — for a serial drive — the
	// analysis work interleaved on the same goroutine. The two tasks run
	// concurrently, so they overlap rather than sum.
	MultiChipSimSeconds  float64 `json:"multi_chip_sim_seconds"`
	SingleChipSimSeconds float64 `json:"single_chip_sim_seconds"`
	// AnalyzeSeconds is wall-clock inside each context's Session
	// consumers (indexed by Context) — on a pipelined run this time is
	// on the consumer goroutine, overlapped with simulation.
	AnalyzeSeconds [NumContexts]float64 `json:"analyze_seconds"`
	// Pipeline holds each context's ring counters (indexed by Context);
	// zero-valued for serial runs, which cross no ring.
	Pipeline [NumContexts]trace.PipeStats `json:"pipeline"`
}

// PipelineTotal sums the per-context pipeline counters.
func (st *StageStats) PipelineTotal() trace.PipeStats {
	var total trace.PipeStats
	for i := range st.Pipeline {
		total.Add(st.Pipeline[i])
	}
	return total
}

// Context returns the result for one analysis context, or nil when c is
// not one of the package's contexts — mirroring Context.String, which
// renders the same out-of-range values as "invalid context".
func (e *Experiment) Context(c Context) *ContextResult {
	if c < 0 || c >= NumContexts {
		return nil
	}
	return e.Contexts[c]
}

// analyzerPool recycles core.Analyzer instances (grammar slab, digram
// index, stride tables, walker scratch) across contexts, requests, and
// Runner instances. analyzersOut counts instances currently checked out;
// the cancellation-hygiene tests assert it returns to zero, so no code
// path — including a cancelled sweep — can strand an analyzer.
var (
	analyzerPool = sync.Pool{New: func() any { return core.NewAnalyzer() }}
	analyzersOut atomic.Int64
)

func getAnalyzer() *core.Analyzer {
	analyzersOut.Add(1)
	return analyzerPool.Get().(*core.Analyzer)
}

func putAnalyzer(an *core.Analyzer) {
	analyzerPool.Put(an)
	analyzersOut.Add(-1)
}

// AnalyzersInFlight reports how many pooled analyzers are currently
// checked out. It exists for hygiene assertions in other packages'
// tests (the ingest server parks live sessions across connections, and
// its tests prove parked state cannot strand an analyzer); production
// code has no business reading it.
func AnalyzersInFlight() int64 { return analyzersOut.Load() }

// headerOf derives a window header from a materialized trace.
func headerOf(tr *trace.Trace) trace.Header {
	return trace.Header{Misses: tr.Len(), Instructions: tr.Instructions, CPUs: tr.CPUs}
}
