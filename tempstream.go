// Package tempstream reproduces "Temporal Streams in Commercial Server
// Applications" (Wenisch et al., IISWC 2008): it simulates the paper's six
// commercial workloads on the two machine organizations, collects
// classified off-chip and intra-chip read-miss traces, and runs the
// SEQUITUR-based temporal-stream analyses behind every figure and table in
// the paper's evaluation.
//
// Quick start:
//
//	exp := tempstream.Collect(tempstream.OLTP, tempstream.Small, 1, 30000)
//	mc := exp.Contexts[tempstream.MultiChipCtx]
//	fmt.Println(mc.Analysis.StreamFraction()) // fraction of misses in streams
//
// The analyses are hardware-independent (Section 3 of the paper): streams
// are identified by SEQUITUR grammar inference over the miss-address
// sequence, with no assumptions about any particular prefetcher.
//
// # Concurrency
//
// Collect runs the two machine simulations concurrently and fans the three
// context analyses out over a process-wide bounded worker pool; CollectAll
// additionally overlaps the applications. The pool width defaults to
// GOMAXPROCS and is tuned with SetWorkers (the cmd/tsreport -j flag maps to
// it). Results are byte-for-byte deterministic for a given seed regardless
// of the worker count: every simulation seeds its own RNGs and every
// analysis is a pure function of its trace. Analyses borrow core.Analyzer
// instances from an internal pool, so grammar and scratch storage is
// reused across contexts and applications.
package tempstream

import (
	"sync"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported workload identifiers, so that the public API is
// self-contained.
const (
	Apache = workload.Apache
	Zeus   = workload.Zeus
	OLTP   = workload.OLTP
	Qry1   = workload.Qry1
	Qry2   = workload.Qry2
	Qry17  = workload.Qry17
)

// Scales.
const (
	Small  = workload.Small
	Medium = workload.Medium
	Large  = workload.Large
)

// App identifies one of the six applications (Table 1).
type App = workload.App

// Scale selects cache/footprint sizing (ratios follow the paper).
type Scale = workload.Scale

// Apps returns the applications in the paper's presentation order.
func Apps() []App { return workload.Apps() }

// Context is one of the paper's three analysis contexts (Section 3,
// "System contexts").
type Context int

const (
	// MultiChipCtx: off-chip misses of the 16-node DSM.
	MultiChipCtx Context = iota
	// SingleChipCtx: off-chip misses of the 4-core CMP.
	SingleChipCtx
	// IntraChipCtx: L1 misses of the CMP satisfied on chip.
	IntraChipCtx
)

var contextNames = [...]string{"multi-chip", "single-chip", "intra-chip"}

func (c Context) String() string {
	if c >= 0 && int(c) < len(contextNames) {
		return contextNames[c]
	}
	return "invalid context"
}

// Contexts returns all three contexts in the paper's presentation order.
func Contexts() []Context { return []Context{MultiChipCtx, SingleChipCtx, IntraChipCtx} }

// ContextResult is one context's classified trace plus its stream
// analysis.
type ContextResult struct {
	Trace    *trace.Trace
	Analysis *core.Analysis
	SymTab   *trace.SymbolTable
}

// Experiment bundles the three context analyses of one application.
type Experiment struct {
	App   App
	Scale Scale
	// Contexts holds the per-context results.
	Contexts map[Context]*ContextResult
	// MultiChip and SingleChip expose the raw run results (MPKI,
	// footprints, kernel statistics).
	MultiChip  *workload.Result
	SingleChip *workload.Result
}

// SetWorkers bounds the number of simulations and analyses the package
// runs concurrently (process-wide, shared with nested CollectAll fan-out).
// n < 1 restores the default of GOMAXPROCS.
func SetWorkers(n int) { par.SetWorkers(n) }

// Workers returns the current concurrency bound.
func Workers() int { return par.Workers() }

// analyzerPool recycles core.Analyzer instances (grammar slab, digram
// index, walker scratch) across contexts, applications, and Collect calls.
var analyzerPool = sync.Pool{New: func() any { return core.NewAnalyzer() }}

func analyze(tr *trace.Trace) *core.Analysis {
	an := analyzerPool.Get().(*core.Analyzer)
	a := an.Analyze(tr, core.Options{})
	analyzerPool.Put(an)
	return a
}

// Collect runs app on both machine models at the given scale and analyzes
// all three contexts. target is the number of off-chip misses to collect
// per machine (0 = default 60000); analysis truncation and warmup follow
// the package defaults.
//
// The two simulations run concurrently, then the three context analyses
// fan out over the package's worker pool (see SetWorkers). The result is
// identical to a serial run with the same arguments.
func Collect(app App, scale Scale, seed int64, target int) *Experiment {
	var mc, sc *workload.Result
	var sims par.Group
	sims.Go(func() {
		mc = workload.Run(workload.Config{
			App: app, Machine: workload.MultiChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		})
	})
	sims.Go(func() {
		sc = workload.Run(workload.Config{
			App: app, Machine: workload.SingleChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		})
	})
	sims.Wait()

	exp := &Experiment{
		App: app, Scale: scale,
		Contexts:   make(map[Context]*ContextResult, 3),
		MultiChip:  mc,
		SingleChip: sc,
	}
	results := make([]*ContextResult, 3)
	var analyses par.Group
	for i, in := range []struct {
		tr  *trace.Trace
		res *workload.Result
	}{
		{mc.OffChip, mc},
		{sc.OffChip, sc},
		{sc.IntraChip, sc},
	} {
		analyses.Go(func() {
			results[i] = &ContextResult{
				Trace:    in.tr,
				Analysis: analyze(in.tr),
				SymTab:   in.res.SymTab,
			}
		})
	}
	analyses.Wait()
	for i, ctx := range Contexts() {
		exp.Contexts[ctx] = results[i]
	}
	return exp
}

// collectSerial is the strictly sequential reference implementation of
// Collect; the determinism tests compare the concurrent path against it
// field for field.
func collectSerial(app App, scale Scale, seed int64, target int) *Experiment {
	mc := workload.Run(workload.Config{
		App: app, Machine: workload.MultiChip, Scale: scale,
		Seed: seed, TargetMisses: target,
	})
	sc := workload.Run(workload.Config{
		App: app, Machine: workload.SingleChip, Scale: scale,
		Seed: seed, TargetMisses: target,
	})
	exp := &Experiment{
		App: app, Scale: scale,
		Contexts:   make(map[Context]*ContextResult, 3),
		MultiChip:  mc,
		SingleChip: sc,
	}
	exp.Contexts[MultiChipCtx] = &ContextResult{
		Trace:    mc.OffChip,
		Analysis: core.Analyze(mc.OffChip, core.Options{}),
		SymTab:   mc.SymTab,
	}
	exp.Contexts[SingleChipCtx] = &ContextResult{
		Trace:    sc.OffChip,
		Analysis: core.Analyze(sc.OffChip, core.Options{}),
		SymTab:   sc.SymTab,
	}
	exp.Contexts[IntraChipCtx] = &ContextResult{
		Trace:    sc.IntraChip,
		Analysis: core.Analyze(sc.IntraChip, core.Options{}),
		SymTab:   sc.SymTab,
	}
	return exp
}

// CollectAll runs every application, overlapping them on the worker pool,
// and returns the experiments in Apps() order.
func CollectAll(scale Scale, seed int64, target int) []*Experiment {
	apps := Apps()
	out := make([]*Experiment, len(apps))
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		// Collect orchestrates its own pool-bounded leaf tasks, so the
		// per-app goroutine must not hold a worker slot itself.
		go func() {
			defer wg.Done()
			out[i] = Collect(app, scale, seed, target)
		}()
	}
	wg.Wait()
	return out
}
