// Package tempstream reproduces "Temporal Streams in Commercial Server
// Applications" (Wenisch et al., IISWC 2008): it simulates the paper's six
// commercial workloads on the two machine organizations, collects
// classified off-chip and intra-chip read-miss traces, and runs the
// SEQUITUR-based temporal-stream analyses behind every figure and table in
// the paper's evaluation.
//
// Quick start:
//
//	exp := tempstream.Collect(tempstream.OLTP, tempstream.Small, 1, 30000)
//	mc := exp.Context(tempstream.MultiChipCtx)
//	fmt.Println(mc.Analysis.StreamFraction()) // fraction of misses in streams
//
// or, streaming — the analyses consume the miss stream as the simulators
// produce it, so nothing is materialized and peak memory is bounded by the
// analysis window instead of the trace:
//
//	exp := tempstream.CollectStreaming(tempstream.OLTP, tempstream.Small, 1, 30000,
//		tempstream.StreamOptions{})
//	fmt.Println(exp.Context(tempstream.MultiChipCtx).Analysis.StreamFraction())
//
// The streaming consumer behind CollectStreaming is exported as Session
// (a trace.Sink over a pooled incremental analyzer), so other producers —
// the tsserved ingest daemon's network sessions (internal/server), wire-
// format archive replays (internal/wire) — feed the identical machinery.
//
// The analyses are hardware-independent (Section 3 of the paper): streams
// are identified by SEQUITUR grammar inference over the miss-address
// sequence, with no assumptions about any particular prefetcher.
//
// # Streaming
//
// The data path is push-based end to end (see trace.Sink): the machine
// simulators emit classified records into sinks, the workload runner gates
// the warmup window sink-side, and the analyses and prefetcher evaluations
// are incremental operators (core.Analyzer Begin/Feed/Finish,
// prefetch.Evaluator.Step). Collect materializes each context's trace
// through the same sinks and then analyzes it; CollectStreaming wires the
// simulators directly to per-context analyzer (and optional prefetcher)
// sinks, so analysis overlaps simulation and the two produce field-for-
// field identical results.
//
// # Concurrency
//
// Collect runs the two machine simulations concurrently and fans the three
// context analyses out over a process-wide bounded worker pool; CollectAll
// additionally overlaps the applications. The pool width defaults to
// GOMAXPROCS and is tuned with SetWorkers (the cmd/tsreport -j flag maps to
// it). Results are byte-for-byte deterministic for a given seed regardless
// of the worker count: every simulation seeds its own RNGs and every
// analysis is a pure function of its miss stream. Analyses borrow
// core.Analyzer instances from an internal pool, so grammar and scratch
// storage is reused across contexts and applications.
package tempstream

import (
	"sync"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/prefetch"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported workload identifiers, so that the public API is
// self-contained.
const (
	Apache = workload.Apache
	Zeus   = workload.Zeus
	OLTP   = workload.OLTP
	Qry1   = workload.Qry1
	Qry2   = workload.Qry2
	Qry17  = workload.Qry17
)

// Scales.
const (
	Small  = workload.Small
	Medium = workload.Medium
	Large  = workload.Large
)

// App identifies one of the six applications (Table 1).
type App = workload.App

// Scale selects cache/footprint sizing (ratios follow the paper).
type Scale = workload.Scale

// Apps returns the applications in the paper's presentation order.
func Apps() []App { return workload.Apps() }

// Context is one of the paper's three analysis contexts (Section 3,
// "System contexts").
type Context int

const (
	// MultiChipCtx: off-chip misses of the 16-node DSM.
	MultiChipCtx Context = iota
	// SingleChipCtx: off-chip misses of the 4-core CMP.
	SingleChipCtx
	// IntraChipCtx: L1 misses of the CMP satisfied on chip.
	IntraChipCtx

	// NumContexts is the number of analysis contexts.
	NumContexts
)

var contextNames = [NumContexts]string{"multi-chip", "single-chip", "intra-chip"}

func (c Context) String() string {
	if c >= 0 && c < NumContexts {
		return contextNames[c]
	}
	return "invalid context"
}

// Contexts returns all three contexts in the paper's presentation order.
func Contexts() []Context { return []Context{MultiChipCtx, SingleChipCtx, IntraChipCtx} }

// ContextResult is one context's stream analysis plus, in batch mode, its
// classified trace.
type ContextResult struct {
	// Trace is the materialized miss trace. It is nil for streaming
	// collections (unless StreamOptions.KeepTraces was set): the records
	// were consumed as they were produced.
	Trace *trace.Trace
	// Header carries the context's window totals (misses emitted,
	// instructions retired, CPUs) whether or not the trace was kept.
	Header   trace.Header
	Analysis *core.Analysis
	// Prefetch holds the temporal-stream prefetcher evaluation when one
	// was requested (StreamOptions.Prefetch); nil otherwise.
	Prefetch *prefetch.Result
	SymTab   *trace.SymbolTable
}

// Experiment bundles the three context analyses of one application.
type Experiment struct {
	App   App
	Scale Scale
	// Contexts holds the per-context results, indexed by Context.
	Contexts [NumContexts]*ContextResult
	// MultiChip and SingleChip expose the raw run results (MPKI,
	// footprints, kernel statistics).
	MultiChip  *workload.Result
	SingleChip *workload.Result
}

// Context returns the result for one analysis context.
func (e *Experiment) Context(c Context) *ContextResult { return e.Contexts[c] }

// SetWorkers bounds the number of simulations and analyses the package
// runs concurrently (process-wide, shared with nested CollectAll fan-out).
// n < 1 restores the default of GOMAXPROCS.
func SetWorkers(n int) { par.SetWorkers(n) }

// Workers returns the current concurrency bound.
func Workers() int { return par.Workers() }

// analyzerPool recycles core.Analyzer instances (grammar slab, digram
// index, stride tables, walker scratch) across contexts, applications, and
// Collect calls.
var analyzerPool = sync.Pool{New: func() any { return core.NewAnalyzer() }}

func analyze(tr *trace.Trace) *core.Analysis {
	an := analyzerPool.Get().(*core.Analyzer)
	a := an.Analyze(tr, core.Options{})
	analyzerPool.Put(an)
	return a
}

// headerOf derives a window header from a materialized trace.
func headerOf(tr *trace.Trace) trace.Header {
	return trace.Header{Misses: tr.Len(), Instructions: tr.Instructions, CPUs: tr.CPUs}
}

// Collect runs app on both machine models at the given scale and analyzes
// all three contexts. target is the number of off-chip misses to collect
// per machine (0 = default 60000); analysis truncation and warmup follow
// the package defaults.
//
// The two simulations run concurrently, then the three context analyses
// fan out over the package's worker pool (see SetWorkers). The result is
// identical to a serial run with the same arguments.
func Collect(app App, scale Scale, seed int64, target int) *Experiment {
	var mc, sc *workload.Result
	var sims par.Group
	sims.Go(func() {
		mc = workload.Run(workload.Config{
			App: app, Machine: workload.MultiChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		})
	})
	sims.Go(func() {
		sc = workload.Run(workload.Config{
			App: app, Machine: workload.SingleChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		})
	})
	sims.Wait()

	exp := &Experiment{
		App: app, Scale: scale,
		MultiChip:  mc,
		SingleChip: sc,
	}
	results := make([]*ContextResult, NumContexts)
	var analyses par.Group
	for i, in := range []struct {
		tr  *trace.Trace
		res *workload.Result
	}{
		{mc.OffChip, mc},
		{sc.OffChip, sc},
		{sc.IntraChip, sc},
	} {
		analyses.Go(func() {
			results[i] = &ContextResult{
				Trace:    in.tr,
				Header:   headerOf(in.tr),
				Analysis: analyze(in.tr),
				SymTab:   in.res.SymTab,
			}
		})
	}
	analyses.Wait()
	for i, ctx := range Contexts() {
		exp.Contexts[ctx] = results[i]
	}
	return exp
}

// collectSerial is the strictly sequential reference implementation of
// Collect; the determinism tests compare the concurrent path against it
// field for field.
func collectSerial(app App, scale Scale, seed int64, target int) *Experiment {
	mc := workload.Run(workload.Config{
		App: app, Machine: workload.MultiChip, Scale: scale,
		Seed: seed, TargetMisses: target,
	})
	sc := workload.Run(workload.Config{
		App: app, Machine: workload.SingleChip, Scale: scale,
		Seed: seed, TargetMisses: target,
	})
	exp := &Experiment{
		App: app, Scale: scale,
		MultiChip:  mc,
		SingleChip: sc,
	}
	exp.Contexts[MultiChipCtx] = &ContextResult{
		Trace:    mc.OffChip,
		Header:   headerOf(mc.OffChip),
		Analysis: core.Analyze(mc.OffChip, core.Options{}),
		SymTab:   mc.SymTab,
	}
	exp.Contexts[SingleChipCtx] = &ContextResult{
		Trace:    sc.OffChip,
		Header:   headerOf(sc.OffChip),
		Analysis: core.Analyze(sc.OffChip, core.Options{}),
		SymTab:   sc.SymTab,
	}
	exp.Contexts[IntraChipCtx] = &ContextResult{
		Trace:    sc.IntraChip,
		Header:   headerOf(sc.IntraChip),
		Analysis: core.Analyze(sc.IntraChip, core.Options{}),
		SymTab:   sc.SymTab,
	}
	return exp
}

// StreamOptions tunes CollectStreaming.
type StreamOptions struct {
	// Analysis tunes the per-context stream analyses (window size, reuse
	// truncation). The zero value matches Collect's defaults.
	Analysis core.Options
	// Prefetch, when non-nil, additionally evaluates a temporal-stream
	// prefetcher over each context's miss stream as it is produced; the
	// counters land in ContextResult.Prefetch.
	Prefetch *prefetch.Config
	// KeepTraces materializes the per-context traces as Collect does,
	// costing O(trace) memory again. Off by default: streaming results
	// carry only headers and analyses.
	KeepTraces bool
}

// streamChunk bounds the Session's batching buffer (misses). Feeding the
// analyzer in bursts rather than per record keeps the grammar's tables hot
// across consecutive symbols instead of competing with the simulator's
// memory traffic on every miss; 32k records is 512 KB — still O(1) per
// context, far below any analysis window.
const streamChunk = 32768

// Session is the streaming consumer of one classified miss stream: a
// trace.Sink that tees each record into a pooled incremental analyzer, an
// optional prefetcher evaluation, and an optional materializing trace,
// amortizing the per-record work over bounded chunks. It is the shared
// entry point of every streaming consumer in the system: CollectStreaming
// runs one Session per analysis context, and the tsserved ingest daemon
// binds one to each network session (internal/server), so a stream fed
// over the wire lands in exactly the machinery an in-process collection
// uses.
//
// Peak memory is O(window): once the analyzer's window is full and no
// other consumer is attached, further records are dropped in O(1) with no
// allocation. A Session is driven from one goroutine (the Sink contract);
// Result must be called exactly once, after Finish, to collect the
// analyses and return the pooled analyzer — or Abandon to discard a
// partially-fed session (e.g. a network stream that errored mid-flight).
type Session struct {
	chunk []trace.Miss
	// inert is set once every consumer is saturated (analysis window full,
	// no prefetcher, no kept trace): the remaining records need no work at
	// all, exactly as the batch path's analysis truncation never reads
	// them.
	inert  bool
	an     *core.Analyzer
	ev     *prefetch.Evaluator
	tr     *trace.Trace
	header trace.Header
}

// NewSession prepares the consumers for one miss stream of a
// cpus-processor machine; expect is the anticipated window length, used
// purely to presize storage (0 is fine: storage grows on demand).
func NewSession(cpus, expect int, opts StreamOptions) *Session {
	s := &Session{
		chunk: make([]trace.Miss, 0, streamChunk),
		an:    analyzerPool.Get().(*core.Analyzer),
	}
	s.an.Begin(cpus, opts.Analysis)
	s.an.Grow(expect)
	if opts.Prefetch != nil {
		s.ev = prefetch.NewEvaluator(*opts.Prefetch)
	}
	if opts.KeepTraces {
		s.tr = &trace.Trace{}
		s.tr.Grow(expect)
	}
	return s
}

// Append implements trace.Sink: one bounds-checked store per record, with
// the consumers run chunk-at-a-time from flush.
func (s *Session) Append(m trace.Miss) {
	if s.inert {
		return
	}
	s.chunk = append(s.chunk, m)
	if len(s.chunk) == cap(s.chunk) {
		s.flush()
	}
}

// flush drains the chunk through the analyzer, prefetcher, and trace in
// record order.
func (s *Session) flush() {
	s.an.FeedAll(s.chunk)
	if s.ev != nil {
		for i := range s.chunk {
			s.ev.Step(s.chunk[i])
		}
	}
	if s.tr != nil {
		s.tr.Misses = append(s.tr.Misses, s.chunk...)
	}
	s.chunk = s.chunk[:0]
	s.inert = s.an.Full() && s.ev == nil && s.tr == nil
}

// Finish implements trace.Sink.
func (s *Session) Finish(h trace.Header) {
	s.flush()
	s.header = h
	if s.tr != nil {
		s.tr.Finish(h)
	}
}

// Result completes the session's analyses — the derivation walk and
// reuse-distance sweep run here — and returns the pooled analyzer. st may
// be nil when no symbol table accompanies the stream (network sessions);
// category attribution is then unavailable on the result.
func (s *Session) Result(st *trace.SymbolTable) *ContextResult {
	cr := &ContextResult{
		Trace:    s.tr,
		Header:   s.header,
		Analysis: s.an.Finish(),
		SymTab:   st,
	}
	analyzerPool.Put(s.an)
	s.an = nil
	if s.ev != nil {
		r := s.ev.Result()
		cr.Prefetch = &r
	}
	return cr
}

// Abandon discards a session without computing results, returning the
// pooled analyzer; for streams that fail mid-flight. The Session must not
// be used afterwards.
func (s *Session) Abandon() {
	if s.an != nil {
		analyzerPool.Put(s.an)
		s.an = nil
	}
}

// CollectStreaming runs app on both machine models and analyzes all three
// contexts without materializing any trace: the simulators push each
// classified miss straight into the per-context analyzer (and optional
// prefetcher) sinks, so analysis overlaps simulation and peak memory is
// bounded by the analysis window (Options.MaxMisses) rather than the
// trace length. Results are field-for-field identical to Collect with the
// same arguments.
func CollectStreaming(app App, scale Scale, seed int64, target int, opts StreamOptions) *Experiment {
	expect := target
	if expect == 0 {
		expect = 60000 // the workload runner's default target
	}
	exp := &Experiment{App: app, Scale: scale}
	var sims par.Group
	sims.Go(func() {
		s := NewSession(workload.MultiChip.CPUCount(), expect, opts)
		res := workload.RunStream(workload.Config{
			App: app, Machine: workload.MultiChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		}, s, nil)
		exp.MultiChip = res
		exp.Contexts[MultiChipCtx] = s.Result(res.SymTab)
	})
	sims.Go(func() {
		off := NewSession(workload.SingleChip.CPUCount(), expect, opts)
		// The intra-chip stream runs up to 40x the off-chip target (the
		// workload runner's measurement cap).
		intra := NewSession(workload.SingleChip.CPUCount(), 40*expect, opts)
		res := workload.RunStream(workload.Config{
			App: app, Machine: workload.SingleChip, Scale: scale,
			Seed: seed, TargetMisses: target,
		}, off, intra)
		exp.SingleChip = res
		exp.Contexts[SingleChipCtx] = off.Result(res.SymTab)
		exp.Contexts[IntraChipCtx] = intra.Result(res.SymTab)
	})
	sims.Wait()
	return exp
}

// CollectAll runs every application, overlapping them on the worker pool,
// and returns the experiments in Apps() order.
func CollectAll(scale Scale, seed int64, target int) []*Experiment {
	apps := Apps()
	out := make([]*Experiment, len(apps))
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		// Collect orchestrates its own pool-bounded leaf tasks, so the
		// per-app goroutine must not hold a worker slot itself.
		go func() {
			defer wg.Done()
			out[i] = Collect(app, scale, seed, target)
		}()
	}
	wg.Wait()
	return out
}
