package tempstream

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// StreamOptions tunes the streaming consumers of a Session.
type StreamOptions struct {
	// Analysis tunes the per-context stream analyses (window size, reuse
	// truncation). The zero value matches the package defaults.
	Analysis core.Options
	// Prefetch, when non-nil, additionally evaluates a temporal-stream
	// prefetcher over each context's miss stream as it is produced; the
	// counters land in ContextResult.Prefetch.
	Prefetch *prefetch.Config
	// KeepTraces materializes the per-context traces, costing O(trace)
	// memory again. Off by default: streaming results carry only headers
	// and analyses.
	KeepTraces bool
	// ShardConsumers fans the session's independent consumers out across
	// goroutines per chunk: the prefetcher evaluation runs concurrently
	// with the analyzer feed, joining before the chunk returns. The
	// consumers are independent state machines that each see the chunk in
	// record order, so results are byte-identical to the serial drive; the
	// fork/join is internal, preserving the Sink contract's
	// single-goroutine drive for the caller. Only profitable with a
	// prefetcher attached and idle cores; off by default.
	ShardConsumers bool
}

// streamChunk bounds the Session's batching buffer (misses). Feeding the
// analyzer in bursts rather than per record keeps the grammar's tables hot
// across consecutive symbols instead of competing with the simulator's
// memory traffic on every miss; 32k records is 512 KB — still O(1) per
// context, far below any analysis window.
const streamChunk = 32768

// ErrSessionAborted is returned by Session.Close when the session is
// closed before its stream finished: the consumers' partial state was
// discarded, so no result was (or can be) produced.
var ErrSessionAborted = errors.New("tempstream: session closed before its stream finished")

// sessionState tracks where a Session is in its
// open → finished → closed lifecycle, so misuse fails with a defined
// panic instead of a nil-pointer dereference on the pooled analyzer.
type sessionState uint8

const (
	// sessionOpen: accepting Append; Finish has not arrived.
	sessionOpen sessionState = iota
	// sessionFinished: the stream ended; Result may be called once.
	sessionFinished
	// sessionClosed: the pooled analyzer has been returned (by Result or
	// Close); every further call except Close is misuse.
	sessionClosed
)

// Session is the streaming consumer of one classified miss stream: a
// trace.Sink that tees each record into a pooled incremental analyzer, an
// optional prefetcher evaluation, and an optional materializing trace,
// amortizing the per-record work over bounded chunks. It is the shared
// entry point of every streaming consumer in the system: Runner.Run
// drives one Session per analysis context, and the tsserved ingest daemon
// binds one to each network session (internal/server), so a stream fed
// over the wire lands in exactly the machinery an in-process collection
// uses.
//
// Peak memory is O(window): once the analyzer's window is full and no
// other consumer is attached, further records are dropped in O(1) with no
// allocation. A Session is driven from one goroutine (the Sink contract)
// through a strict lifecycle: Append zero or more times, Finish exactly
// once, then Result exactly once to collect the analyses and return the
// pooled analyzer — or Close at any point to discard a partially-fed
// session (e.g. a cancelled simulation or a network stream that errored
// mid-flight). Calls outside that order panic with a "tempstream:"
// message naming the violation, rather than corrupting or dereferencing
// the already-returned analyzer.
type Session struct {
	chunk []trace.Miss
	// inert is set once every consumer is saturated (analysis window full,
	// no prefetcher, no kept trace): the remaining records need no work at
	// all, exactly as a batch analysis' truncation never reads them.
	inert  bool
	state  sessionState
	an     *core.Analyzer
	ev     *prefetch.Evaluator
	tr     *trace.Trace
	header trace.Header
	// evDone, when non-nil, selects the sharded drive: consume forks the
	// evaluator onto its own goroutine per chunk and joins on this
	// capacity-1 channel (reused across chunks, so sharding allocates
	// nothing per chunk).
	evDone chan struct{}
	// busyNs accrues wall-clock spent inside consume — the session's
	// analyze time, as distinct from the simulate time of whoever drives
	// it. Plain field: a Session is single-goroutine by contract, and
	// readers (BusySeconds) are documented to run after the drive.
	busyNs int64
}

var _ trace.BatchSink = (*Session)(nil)

// NewSession prepares the consumers for one miss stream of a
// cpus-processor machine; expect is the anticipated window length, used
// purely to presize storage (0 is fine: storage grows on demand).
func NewSession(cpus, expect int, opts StreamOptions) *Session {
	s := &Session{
		chunk: make([]trace.Miss, 0, streamChunk),
		an:    getAnalyzer(),
	}
	s.an.Begin(cpus, opts.Analysis)
	s.an.Grow(expect)
	if opts.Prefetch != nil {
		s.ev = prefetch.NewEvaluator(*opts.Prefetch)
		if opts.ShardConsumers {
			s.evDone = make(chan struct{}, 1)
		}
	}
	if opts.KeepTraces {
		s.tr = &trace.Trace{}
		s.tr.Grow(expect)
	}
	return s
}

// Append implements trace.Sink: one bounds-checked store per record, with
// the consumers run chunk-at-a-time from flush. Appending to a finished
// or closed Session panics: the record would feed an analyzer whose
// result is already sealed (or already back in the pool).
func (s *Session) Append(m trace.Miss) {
	if s.state != sessionOpen {
		panic("tempstream: Session.Append after Finish or Close (the Sink contract allows appends only before the single Finish)")
	}
	if s.inert {
		return
	}
	s.chunk = append(s.chunk, m)
	if len(s.chunk) == cap(s.chunk) {
		s.flush()
	}
}

// flush drains the chunk buffer through consume.
func (s *Session) flush() {
	s.consume(s.chunk)
	s.chunk = s.chunk[:0]
}

// consume runs every consumer over ms in record order — the shared path
// behind Append's chunk buffer and AppendBatch's direct delivery. ms is
// only borrowed (each consumer copies what it keeps). With
// ShardConsumers the prefetcher evaluation runs on its own goroutine
// concurrently with the analyzer feed — both read ms, neither writes it
// — and consume joins before returning, so the caller still sees a
// strictly serial Sink.
func (s *Session) consume(ms []trace.Miss) {
	start := time.Now()
	defer func() { s.busyNs += int64(time.Since(start)) }()
	if s.evDone != nil && len(ms) > 0 {
		go func() {
			for i := range ms {
				s.ev.Step(ms[i])
			}
			s.evDone <- struct{}{}
		}()
		s.an.FeedAll(ms)
		<-s.evDone
	} else {
		s.an.FeedAll(ms)
		if s.ev != nil {
			for i := range ms {
				s.ev.Step(ms[i])
			}
		}
	}
	if s.tr != nil {
		s.tr.Misses = append(s.tr.Misses, ms...)
	}
	s.inert = s.an.Full() && s.ev == nil && s.tr == nil
}

// batchDirect is the batch size from which AppendBatch bypasses the
// chunk buffer: a batch this large already amortizes the per-chunk
// dispatch, so buffering it again would only add a copy. Matches the
// wire decoder's frame granularity.
const batchDirect = 4096

// AppendBatch implements trace.BatchSink: small batches land in the
// same chunk buffer Append fills (so mixed drives chunk identically);
// batches of at least batchDirect records flush the buffer and feed the
// consumers directly, skipping the copy — the decoded-frame fast path
// of the ingest server. Ordering across mixed Append/AppendBatch calls
// is exactly delivery order, and the same lifecycle panics apply.
func (s *Session) AppendBatch(ms []trace.Miss) {
	if s.state != sessionOpen {
		panic("tempstream: Session.Append after Finish or Close (the Sink contract allows appends only before the single Finish)")
	}
	if s.inert || len(ms) == 0 {
		return
	}
	if len(ms) >= batchDirect {
		s.flush() // buffered records first: order is delivery order
		s.consume(ms)
		return
	}
	for len(ms) > 0 && !s.inert {
		n := min(cap(s.chunk)-len(s.chunk), len(ms))
		s.chunk = append(s.chunk, ms[:n]...)
		ms = ms[n:]
		if len(s.chunk) == cap(s.chunk) {
			s.flush()
		}
	}
}

// Finish implements trace.Sink, sealing the stream with its header.
// Finishing twice (or after Close) panics.
func (s *Session) Finish(h trace.Header) {
	if s.state != sessionOpen {
		panic("tempstream: Session.Finish called twice (the Sink contract delivers exactly one Finish)")
	}
	s.flush()
	s.header = h
	if s.tr != nil {
		s.tr.Finish(h)
	}
	s.state = sessionFinished
}

// Result completes the session's analyses — the derivation walk and
// reuse-distance sweep run here — and returns the pooled analyzer. st may
// be nil when no symbol table accompanies the stream (network sessions);
// category attribution is then unavailable on the result. Result must be
// called exactly once, after Finish; calling it early, twice, or after
// Close panics.
func (s *Session) Result(st *trace.SymbolTable) *ContextResult {
	switch s.state {
	case sessionOpen:
		panic("tempstream: Session.Result before Finish (the stream's header has not been folded)")
	case sessionClosed:
		panic("tempstream: Session.Result called twice or after Close (the pooled analyzer is already returned)")
	}
	cr := &ContextResult{
		Trace:    s.tr,
		Header:   s.header,
		Analysis: s.an.Finish(),
		SymTab:   st,
	}
	putAnalyzer(s.an)
	s.an = nil
	s.state = sessionClosed
	if s.ev != nil {
		r := s.ev.Result()
		cr.Prefetch = &r
	}
	return cr
}

// Close releases the session without computing results, returning the
// pooled analyzer to the pool. It is the error-path counterpart of
// Result — a cancelled simulation or a network stream that died
// mid-flight closes its sessions — and the only Session method that is
// safe to call in any state: closing an already-closed (or Result-ed)
// session is a no-op. Close reports ErrSessionAborted when it discarded
// an unfinished stream, and nil when the session had already completed
// its lifecycle or had finished its stream without a Result call.
func (s *Session) Close() error {
	if s.an != nil {
		putAnalyzer(s.an)
		s.an = nil
	}
	aborted := s.state == sessionOpen
	s.state = sessionClosed
	if aborted {
		return ErrSessionAborted
	}
	return nil
}

// BusySeconds reports wall-clock spent inside the session's consumers
// (analyzer feed, prefetcher, trace materialization) so far — the
// "analyze" side of a run's simulate/analyze split. Read it from the
// driving goroutine, or after the drive has quiesced (after Finish, or
// after a wrapping Pipelined's Close).
func (s *Session) BusySeconds() float64 { return float64(s.busyNs) / 1e9 }

// Abandon discards a session without computing results.
//
// Deprecated: use Close, which additionally reports whether a live
// stream was discarded.
func (s *Session) Abandon() { s.Close() }
