// Command seqgram runs the SEQUITUR hierarchical compression algorithm
// over a symbol sequence read from stdin (whitespace-separated integers,
// or arbitrary tokens with -tokens) and prints the inferred grammar plus
// temporal-stream statistics. This is the analysis engine of the paper,
// usable standalone.
//
// Usage:
//
//	echo 1 2 3 1 2 3 9 | seqgram
//	seqgram -tokens < words.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/sequitur"
	"repro/internal/trace"
)

func main() {
	tokens := flag.Bool("tokens", false, "treat input as arbitrary tokens, not integers")
	grammar := flag.Bool("grammar", true, "print the inferred grammar")
	flag.Parse()

	var syms []uint64
	intern := map[string]uint64{}
	names := []string{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		tok := sc.Text()
		if *tokens {
			id, ok := intern[tok]
			if !ok {
				id = uint64(len(names))
				intern[tok] = id
				names = append(names, tok)
			}
			syms = append(syms, id)
			continue
		}
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqgram: %q is not an integer (use -tokens?)\n", tok)
			os.Exit(2)
		}
		syms = append(syms, v)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "seqgram:", err)
		os.Exit(1)
	}
	if len(syms) == 0 {
		fmt.Fprintln(os.Stderr, "seqgram: empty input")
		os.Exit(2)
	}

	g := sequitur.Parse(syms)
	if err := g.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "seqgram: invariant violation:", err)
		os.Exit(1)
	}
	if *grammar {
		fmt.Print(g)
	}

	// Stream statistics via the core analysis (single synthetic CPU).
	tr := &trace.Trace{CPUs: 1}
	for _, s := range syms {
		tr.Append(trace.Miss{Addr: s << 6})
	}
	a := core.Analyze(tr, core.Options{MaxMisses: len(syms)})
	nr, ns, rc := a.Fractions()
	fmt.Printf("symbols: %d, rules: %d\n", len(syms), g.RuleCount())
	fmt.Printf("non-repetitive %.1f%%, new streams %.1f%%, recurring %.1f%%\n",
		100*nr, 100*ns, 100*rc)
	if a.LengthDist.Len() > 0 {
		fmt.Printf("median stream length: %.0f\n", a.MedianStreamLength())
	}
}
