// Command tsload is the ingest load generator: it fans the paper's six
// simulated applications out over N concurrent client connections to a
// tsserved daemon, streaming each simulation's classified misses over the
// wire protocol as they are produced, and reports per-session results
// plus aggregate ingest throughput.
//
// Usage:
//
//	tsload -addr HOST:7465 [-clients 4] [-apps all|oltp,apache,...]
//	       [-machine both] [-intra] [-scale small] [-seed 1] [-target 20000]
//	       [-window N] [-prefetch] [-repeat 1] [-resilient=true] [-json]
//	       [-progress 10s] [-log-format text|json] [-log-level LEVEL]
//
// Each job simulates one app on one machine model and streams its
// off-chip misses into one session; with -intra, a single-chip job
// streams the intra-chip misses into a second concurrent session fed by
// the same simulation — the same fan-out the library Runner performs in
// process. -repeat multiplies the job list for sustained load. The final
// line reports aggregate records/sec across all sessions, the number
// tsserved's ingest trajectory tracks.
//
// Sessions are resilient by default (server.DialResilient): transport
// resets, server sheds, and in-flight corruption are absorbed by
// reconnecting and resuming from the server's parked state, and the
// final summary includes per-error-class recovery counters (dials,
// transport faults, busy/draining sheds, resumes, restarts). Pass
// -resilient=false for the legacy single-shot client, where any
// mid-stream failure fails the session.
//
// -json emits the run summary as a single JSON object on stdout — job
// and failure counts, aggregate records/sec, the recovery counters, and
// one entry per completed session carrying the server's full
// SessionResult (digests included) — for harnesses (the fleet chaos
// e2e, the archive-equivalence e2e, CI) to parse; the human-readable
// lines move to stderr.
//
// Structured logs (slog, -log-format/-log-level) always go to stderr, so
// the -json stdout stays machine-clean: a progress line every -progress
// interval (jobs done, records, rate, recovery counters so far) and a
// final recovery summary broken out by error class.
//
// SIGINT/SIGTERM cancels the fleet: queued jobs are dropped, every
// in-flight simulation stops within one engine step, its half-fed
// sessions are closed, and the command exits cleanly (status 130) with
// the aggregate line for what did complete.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

type job struct {
	app     workload.App
	machine workload.MachineKind
}

// ingestSession is what a job needs from either client flavor: the Sink
// to stream into, and the result/records accessors for reporting.
type ingestSession interface {
	trace.Sink
	Records() int64
	Result() (*server.SessionResult, error)
	Close() error
}

// fleet carries the per-run dialing configuration and the aggregated
// recovery counters shared by every worker.
type fleet struct {
	addr      string
	req       server.Request
	resilient bool
	seed      int64

	sessionSeq atomic.Int64 // distinct jitter seed per session

	mu      sync.Mutex
	retries server.RetryStats
}

// dial opens one session of the configured flavor.
func (f *fleet) dial(label string, cpus int) (ingestSession, error) {
	req := f.req
	req.Label = label
	if !f.resilient {
		return server.DialSession(f.addr, cpus, req)
	}
	return server.DialResilient(f.addr, cpus, req, server.RetryPolicy{
		Seed: f.seed + f.sessionSeq.Add(1),
	})
}

// collect folds a finished (or failed) session's recovery counters into
// the fleet totals.
func (f *fleet) collect(s ingestSession) {
	if rs, ok := s.(*server.ResilientSession); ok {
		f.mu.Lock()
		f.retries.Add(rs.Stats())
		f.mu.Unlock()
	}
}

// snapshot returns the recovery counters folded in so far.
func (f *fleet) snapshot() server.RetryStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retries
}

// retryAttrs breaks RetryStats out as slog attributes, one per error
// class — the structured twin of the human recovery line.
func retryAttrs(r server.RetryStats) []any {
	return []any{
		"dials", r.Dials, "transport", r.Transport, "busy", r.Busy,
		"draining", r.Draining, "stream_errors", r.StreamErrors,
		"resumes", r.Resumes, "restarts", r.Restarts, "resume_lost", r.ResumeLost,
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7465", "tsserved ingest address")
	clients := flag.Int("clients", 4, "concurrent client simulations")
	appsFlag := flag.String("apps", "all", "comma-separated app list, or all")
	machineFlag := flag.String("machine", "both", "machine model per app: multi, single, or both")
	intra := flag.Bool("intra", false, "also stream single-chip intra-chip misses (second session per CMP job)")
	scaleFlag := flag.String("scale", "small", "scale: small, medium, large")
	seed := flag.Int64("seed", 1, "random seed")
	target := flag.Int("target", 20000, "off-chip misses to stream per simulation")
	window := flag.Int("window", 0, "requested per-session analysis window in misses (0 = server default)")
	pf := flag.Bool("prefetch", false, "request a temporal-stream prefetcher evaluation per session")
	repeat := flag.Int("repeat", 1, "repetitions of the app x machine job list")
	resilient := flag.Bool("resilient", true, "retrying/resumable sessions (false = legacy single-shot client)")
	jsonOut := flag.Bool("json", false, "machine-readable summary as one JSON object on stdout (human lines move to stderr)")
	progress := flag.Duration("progress", 10*time.Second, "structured progress log interval on stderr (0 = disabled)")
	logFlags := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	apps, err := cli.Apps(*appsFlag)
	if err != nil {
		fatal(err)
	}
	machines, err := cli.Machines(*machineFlag)
	if err != nil {
		fatal(err)
	}
	scale, err := cli.Scale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if err := cli.Positive("-clients", *clients); err != nil {
		fatal(err)
	}
	if err := cli.Positive("-target", *target); err != nil {
		fatal(err)
	}
	if err := cli.Positive("-repeat", *repeat); err != nil {
		fatal(err)
	}
	if err := cli.NonNegative("-window", *window); err != nil {
		fatal(err)
	}
	if *intra {
		hasSingle := false
		for _, m := range machines {
			hasSingle = hasSingle || m == workload.SingleChip
		}
		if !hasSingle {
			fatal(fmt.Errorf("-intra requires -machine single or both"))
		}
	}

	// With -json, stdout carries exactly one JSON object; every human
	// line (per-session reports, aggregate) moves to stderr.
	human := io.Writer(os.Stdout)
	if *jsonOut {
		human = os.Stderr
	}

	req := server.Request{Analysis: core.Options{MaxMisses: *window}}
	if *pf {
		req.Prefetch = &prefetch.Config{Depth: 8, HistoryLen: 20000, BufferBlocks: 2048}
	}
	fl := &fleet{addr: *addr, req: req, resilient: *resilient, seed: *seed}

	var jobs []job
	for r := 0; r < *repeat; r++ {
		for _, app := range apps {
			for _, m := range machines {
				jobs = append(jobs, job{app, m})
			}
		}
	}

	// One signal context governs the fleet: SIGINT/SIGTERM stops handing
	// out jobs and cancels every in-flight simulation mid-step.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		mu           sync.Mutex
		failed       int
		sessions     []sessionReport
		totalRecords atomic.Int64
		jobsDone     atomic.Int64
		wg           sync.WaitGroup
	)
	collectSession := func(r sessionReport) {
		mu.Lock()
		sessions = append(sessions, r)
		mu.Unlock()
	}
	jobCh := make(chan job)
	start := time.Now()

	// Periodic structured progress on stderr: how far the run is and
	// what recovery work the resilient clients have done so far.
	progressDone := make(chan struct{})
	if *progress > 0 {
		go func() {
			t := time.NewTicker(*progress)
			defer t.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-t.C:
					elapsed := time.Since(start).Seconds()
					mu.Lock()
					failedNow := failed
					mu.Unlock()
					attrs := []any{
						"jobs_done", jobsDone.Load(), "jobs_total", len(jobs),
						"sessions_failed", failedNow,
						"records", totalRecords.Load(),
						"records_per_sec", float64(totalRecords.Load()) / elapsed,
					}
					logger.Info("progress", append(attrs, retryAttrs(fl.snapshot())...)...)
				}
			}
		}()
	}
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if ctx.Err() != nil {
					continue // interrupted: drain the queue without dialing new sessions
				}
				err := runJob(ctx, fl, j, scale, *seed, *target, *intra, &totalRecords, human, collectSession)
				jobsDone.Add(1)
				if errors.Is(err, context.Canceled) {
					continue // reported once below, not per job
				}
				if err != nil {
					mu.Lock()
					failed++
					fmt.Fprintf(os.Stderr, "tsload: %v/%v: %v\n", j.app, j.machine, err)
					mu.Unlock()
					logger.Warn("session failed", "app", fmt.Sprint(j.app), "machine", fmt.Sprint(j.machine), "error", err.Error())
				}
			}
		}()
	}
dispatch:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobCh)
	wg.Wait()
	close(progressDone)
	elapsed := time.Since(start)

	recs := totalRecords.Load()
	fmt.Fprintf(human, "tsload: %d jobs, %d sessions failed, %d records in %.2fs = %.0f records/sec aggregate\n",
		len(jobs), failed, recs, elapsed.Seconds(), float64(recs)/elapsed.Seconds())
	if *resilient {
		r := fl.retries
		fmt.Fprintf(human, "tsload: recovery: dials=%d transport=%d busy=%d draining=%d stream=%d resumes=%d restarts=%d resume_lost=%d\n",
			r.Dials, r.Transport, r.Busy, r.Draining, r.StreamErrors, r.Resumes, r.Restarts, r.ResumeLost)
		logger.Info("recovery", retryAttrs(r)...)
	}
	if *jsonOut {
		// Deterministic session order regardless of worker scheduling.
		sort.Slice(sessions, func(i, k int) bool { return sessions[i].Label < sessions[k].Label })
		summary := struct {
			Jobs           int                `json:"jobs"`
			FailedSessions int                `json:"failed_sessions"`
			Records        int64              `json:"records"`
			Seconds        float64            `json:"seconds"`
			RecordsPerSec  float64            `json:"records_per_sec"`
			Interrupted    bool               `json:"interrupted"`
			Recovery       *server.RetryStats `json:"recovery,omitempty"`
			Sessions       []sessionReport    `json:"sessions,omitempty"`
		}{
			Jobs:           len(jobs),
			FailedSessions: failed,
			Records:        recs,
			Seconds:        elapsed.Seconds(),
			RecordsPerSec:  float64(recs) / elapsed.Seconds(),
			Interrupted:    ctx.Err() != nil,
			Sessions:       sessions,
		}
		if *resilient {
			r := fl.retries
			summary.Recovery = &r
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(summary); err != nil {
			fatal(err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tsload: interrupted, remaining jobs cancelled")
		os.Exit(130)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// sessionReport is one completed session in the -json summary: the
// label the server saw and its full analysis result, digests included —
// the currency the archive-equivalence e2e compares against tsquery.
type sessionReport struct {
	Label   string                `json:"label"`
	Records int64                 `json:"records"`
	Result  *server.SessionResult `json:"result"`
}

// runJob simulates one app/machine pair, streaming into one session (plus
// an intra-chip session for CMP jobs when requested), and prints each
// session's result line. A cancelled ctx stops the simulation mid-step;
// the half-fed sessions are closed (their deferred Close) and ctx's
// error is returned.
func runJob(ctx context.Context, fl *fleet, j job, scale workload.Scale, seed int64, target int,
	intra bool, totalRecords *atomic.Int64, human io.Writer, collect func(sessionReport)) error {
	label := fmt.Sprintf("%v/%v", j.app, j.machine)
	off, err := fl.dial(label, j.machine.CPUCount())
	if err != nil {
		return err
	}
	defer fl.collect(off)
	defer off.Close()

	var intraSess ingestSession
	if intra && j.machine == workload.SingleChip {
		intraSess, err = fl.dial(label+"/intra", j.machine.CPUCount())
		if err != nil {
			return err
		}
		defer fl.collect(intraSess)
		defer intraSess.Close()
	}

	cfg := workload.Config{App: j.app, Machine: j.machine, Scale: scale, Seed: seed, TargetMisses: target}
	simStart := time.Now()
	var intraSink trace.Sink
	if intraSess != nil {
		intraSink = intraSess
	}
	if _, runErr := workload.RunStreamContext(ctx, cfg, off, intraSink); runErr != nil {
		return runErr
	}
	simSecs := time.Since(simStart).Seconds()

	report := func(label string, cs ingestSession) error {
		res, err := cs.Result()
		if err != nil {
			return err
		}
		totalRecords.Add(cs.Records())
		collect(sessionReport{Label: label, Records: cs.Records(), Result: res})
		fmt.Fprintf(human, "  %-22s records=%-8d window=%-7d streams=%5.1f%% mpki=%7.3f %8.0f records/sec\n",
			label, cs.Records(), res.Window, 100*res.StreamFrac, res.MPKI,
			float64(cs.Records())/simSecs)
		return nil
	}
	if err := report(label, off); err != nil {
		return err
	}
	if intraSess != nil {
		if err := report(label+"/intra", intraSess); err != nil {
			return err
		}
	}
	return nil
}
