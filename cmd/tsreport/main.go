// Command tsreport regenerates every figure and table of the paper's
// evaluation section: it simulates all six workloads on both machine
// models, runs the temporal-stream analyses, and prints the results.
//
// Usage:
//
//	tsreport [-scale small|medium|large] [-seed N] [-target N] [-j N]
//	         [-only fig1,fig2,fig3,fig4,table3,table4,table5]
//
// Simulations and analyses for all applications run concurrently on the
// report Runner's bounded worker pool (-j, default GOMAXPROCS); output
// is deterministic for a given seed regardless of -j. A progress line
// prints as each application's experiment completes (completion order),
// and SIGINT/SIGTERM cancels the whole sweep: every in-flight
// simulation stops within one engine step and the command exits cleanly
// without printing partial artifacts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	tempstream "repro"
	"repro/internal/cli"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	scaleFlag := flag.String("scale", "small", "simulation scale: small, medium, or large")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	target := flag.Int("target", 60000, "off-chip misses to trace per machine")
	only := flag.String("only", "", "comma-separated artifacts to print (fig1,fig2,fig3,fig4,table3,table4,table5,hot); empty = all")
	jobs := flag.Int("j", 0, "max concurrent simulations/analyses (0 = GOMAXPROCS)")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tsreport: %v\n", err)
		os.Exit(2)
	}
	scale, err := cli.Scale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if err := cli.NonNegative("-j", *jobs); err != nil {
		fatal(err)
	}
	if err := cli.Positive("-target", *target); err != nil {
		fatal(err)
	}

	known := map[string]bool{"fig1": true, "fig2": true, "fig3": true, "fig4": true,
		"table3": true, "table4": true, "table5": true, "hot": true}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			name := strings.TrimSpace(s)
			if !known[name] {
				fatal(fmt.Errorf("unknown artifact %q in -only (want fig1..fig4, table3..table5, hot)", name))
			}
			want[name] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	// One signal context governs the whole sweep: SIGINT/SIGTERM reaches
	// every in-flight simulation through the Runner.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := tempstream.NewRunner(tempstream.WithWorkers(*jobs))

	fmt.Printf("tsreport: scale=%s seed=%d target=%d misses per machine, %d workers\n",
		scale, *seed, *target, runner.Workers())
	start := time.Now()

	apps := tempstream.Apps()
	reqs := make([]tempstream.Request, len(apps))
	pos := make(map[tempstream.App]int, len(apps))
	for i, app := range apps {
		// The report reads the raw traces (MPKI class breakdowns), so the
		// sweep keeps them.
		reqs[i] = tempstream.Request{
			App: app, Scale: scale, Seed: *seed, TargetMisses: *target, KeepTraces: true,
		}
		pos[app] = i
	}
	exps := make([]*tempstream.Experiment, len(apps))
	for exp, err := range runner.RunAll(ctx, reqs...) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "tsreport: interrupted, cancelling sweep")
				os.Exit(130)
			}
			fatal(err)
		}
		exps[pos[exp.App]] = exp
		fmt.Printf("  simulated %-7s (footprint %3d MB multi / %3d MB single)\n",
			exp.App, exp.MultiChip.Footprint>>20, exp.SingleChip.Footprint>>20)
	}
	fmt.Printf("all simulations done in %v\n\n", time.Since(start).Round(time.Millisecond))

	var apd []report.AppData
	webApps, oltpApps, dssApps := []report.AppData{}, []report.AppData{}, []report.AppData{}
	for _, exp := range exps {
		ad := appData(exp)
		apd = append(apd, ad)
		switch exp.App.Class() {
		case "Web":
			webApps = append(webApps, ad)
		case "OLTP":
			oltpApps = append(oltpApps, ad)
		default:
			dssApps = append(dssApps, ad)
		}
	}

	out := os.Stdout
	if sel("fig1") {
		report.Figure1(out, apd)
		fmt.Fprintln(out)
	}
	if sel("fig2") {
		report.Figure2(out, apd)
		fmt.Fprintln(out)
	}
	if sel("fig3") {
		report.Figure3(out, apd)
		fmt.Fprintln(out)
	}
	if sel("fig4") {
		report.Figure4Length(out, apd)
		fmt.Fprintln(out)
		report.Figure4Reuse(out, apd)
		fmt.Fprintln(out)
	}
	if sel("table3") {
		cats := append(trace.CrossAppCategories(), trace.WebCategories()...)
		report.CategoryTable(out, "TABLE 3: Temporal stream origins in Web applications", webApps, cats)
		fmt.Fprintln(out)
	}
	if sel("table4") {
		cats := append(trace.CrossAppCategories(), trace.DBCategories()...)
		report.CategoryTable(out, "TABLE 4: Temporal stream origins in OLTP (DB2)", oltpApps, cats)
		fmt.Fprintln(out)
	}
	if sel("table5") {
		cats := append(trace.CrossAppCategories(), trace.DBCategories()...)
		report.CategoryTable(out, "TABLE 5: Temporal stream origins in DSS (DB2)", dssApps, cats)
		fmt.Fprintln(out)
	}
	if sel("hot") {
		report.HotStreams(out, apd, 0, 8)
		fmt.Fprintln(out)
	}
}

// appData adapts an Experiment to the report package's input.
func appData(exp *tempstream.Experiment) report.AppData {
	ad := report.AppData{App: exp.App}
	for _, ctx := range tempstream.Contexts() {
		cr := exp.Context(ctx)
		ad.Contexts = append(ad.Contexts, report.ContextData{
			Name:     ctx.String(),
			Trace:    cr.Trace,
			Analysis: cr.Analysis,
			SymTab:   cr.SymTab,
		})
	}
	return ad
}
