// Command tsbench runs (or parses) the repository's benchmark suite and
// writes a BENCH_<n>.json trajectory artifact: one JSON document per
// invocation holding every benchmark's ns/op and custom metrics
// (misses/sec, covered_%, coherence shares, ...). Successive artifacts
// (BENCH_1.json, BENCH_2.json, ...) form the perf trajectory of the
// repository over time; CI runs it on every push and uploads the result.
//
// Usage:
//
//	tsbench                     # runs `go test -short -bench=. -benchtime=1x ./...`
//	tsbench -in bench.txt       # parses an existing benchmark output instead
//	tsbench -out results.json   # explicit output path (default BENCH_<n>.json)
//	tsbench -bench Simulation -benchtime 5x -count 3   # forwarded to go test
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
)

// BenchResult is one benchmark line, parsed.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the whole trajectory record.
type Artifact struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Command    string        `json:"command,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchLine matches `BenchmarkX-8   	  10	 123 ns/op	 4 B/op	 5 allocs/op	 6.7 label`.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	procSuffix = regexp.MustCompile(`-\d+$`)
)

func parseBench(r io.Reader) []BenchResult {
	var out []BenchResult
	buf, err := io.ReadAll(r)
	if err != nil {
		fatalf("reading benchmark output: %v", err)
	}
	for _, line := range strings.Split(string(buf), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		res := BenchResult{
			Name:       procSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out
}

// nextArtifactPath finds the first unused BENCH_<n>.json in dir. Any stat
// error other than "exists" stops the search (the subsequent write will
// report the real problem).
func nextArtifactPath(dir string) string {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); err != nil {
			return p
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tsbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "parse this existing `go test -bench` output instead of running the suite")
	out := flag.String("out", "", "output JSON path (default: next unused BENCH_<n>.json)")
	dir := flag.String("dir", ".", "directory for auto-numbered artifacts")
	benchRe := flag.String("bench", ".", "benchmark pattern forwarded to go test")
	benchtime := flag.String("benchtime", "1x", "benchtime forwarded to go test")
	count := flag.Int("count", 1, "count forwarded to go test")
	long := flag.Bool("long", false, "run without -short (includes the simulation-heavy benchmarks)")
	flag.Parse()

	if err := cli.Positive("-count", *count); err != nil {
		fatalf("%v", err)
	}

	art := Artifact{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		art.Benchmarks = parseBench(f)
		f.Close()
		art.Command = "parsed from " + *in
	} else {
		args := []string{"test", "-run", "^$", "-bench", *benchRe,
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "./..."}
		if !*long {
			args = append([]string{"test", "-short"}, args[1:]...)
		}
		// SIGINT/SIGTERM cancels the suite: the go test child is killed
		// and no partial artifact is written.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		cmd := exec.CommandContext(ctx, "go", args...)
		cmd.Stderr = os.Stderr
		outBuf, err := cmd.Output()
		if errors.Is(ctx.Err(), context.Canceled) {
			fmt.Fprintln(os.Stderr, "tsbench: interrupted, benchmark run cancelled")
			os.Exit(130)
		}
		if err != nil {
			fatalf("go test: %v", err)
		}
		art.Benchmarks = parseBench(strings.NewReader(string(outBuf)))
		art.Command = "go " + strings.Join(args, " ")
	}

	path := *out
	if path == "" {
		path = nextArtifactPath(*dir)
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("tsbench: wrote %d benchmark results to %s\n", len(art.Benchmarks), path)
}
