// Command tsbench runs (or parses) the repository's benchmark suite and
// writes a BENCH_<n>.json trajectory artifact: one JSON document per
// invocation holding every benchmark's ns/op and custom metrics
// (misses/sec, covered_%, coherence shares, ...). Successive artifacts
// (BENCH_1.json, BENCH_2.json, ...) form the perf trajectory of the
// repository over time; CI runs it on every push and uploads the result.
//
// Usage:
//
//	tsbench                     # runs `go test -short -bench=. -benchtime=1x ./...`
//	tsbench -in bench.txt       # parses an existing benchmark output instead
//	tsbench -out results.json   # explicit output path (default BENCH_<n>.json)
//	tsbench -bench Simulation -benchtime 5x -count 3   # forwarded to go test
//	tsbench -in bench.txt -gate BENCH_1.json           # regression gate against a baseline
//
// -gate turns the run into a regression gate: after writing the
// artifact, the named throughput keys (-gate-keys, default the ingest
// and streaming-collect rates) are compared against the baseline
// artifact, and the process exits 1 if any regressed by more than
// -gate-band (default 25% — wide enough for shared-runner noise on 1x
// smoke iterations, tight enough to catch a real data-path regression).
// Improvements and new benchmarks never fail the gate; a tracked key
// missing from the current run does, so a benchmark silently dropping
// out of the suite cannot pass.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
)

// BenchResult is one benchmark line, parsed.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the whole trajectory record. GoMaxProcs and NumCPU pin
// the parallelism the run had available, so intra-run scaling curves
// (BenchmarkPipelinedCollect, the ingest benchmarks) are interpretable
// across runners: parity on a 1-core runner and >1x on a 16-core one
// are both expected shapes, distinguishable only by this metadata.
type Artifact struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Command    string        `json:"command,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchLine matches `BenchmarkX-8   	  10	 123 ns/op	 4 B/op	 5 allocs/op	 6.7 label`.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	procSuffix = regexp.MustCompile(`-\d+$`)
)

func parseBench(r io.Reader) []BenchResult {
	var out []BenchResult
	buf, err := io.ReadAll(r)
	if err != nil {
		fatalf("reading benchmark output: %v", err)
	}
	for _, line := range strings.Split(string(buf), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		res := BenchResult{
			Name:       procSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out
}

// nextArtifactPath finds the first unused BENCH_<n>.json in dir. Any stat
// error other than "exists" stops the search (the subsequent write will
// report the real problem).
func nextArtifactPath(dir string) string {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); err != nil {
			return p
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tsbench: "+format+"\n", args...)
	os.Exit(1)
}

// defaultGateKeys are the throughput metrics the regression gate tracks
// by default: the wire-ingest hot path and the end-to-end streaming
// collection — the two rates every perf-focused PR is trying to move.
const defaultGateKeys = "BenchmarkIngestServer:records/sec,BenchmarkStreamingCollect:misses/sec"

// gate compares the named higher-is-better metrics of the current run
// against a baseline artifact and returns the regressions (worse by
// more than band, a fraction). Keys are "BenchName:metric" pairs.
// Benchmarks absent from the baseline are skipped (a new benchmark has
// no trajectory yet); keys absent from the current run are regressions
// by definition.
func gate(baselinePath string, band float64, keys string, cur []BenchResult) []string {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalf("gate baseline: %v", err)
	}
	var base Artifact
	if err := json.Unmarshal(buf, &base); err != nil {
		fatalf("gate baseline %s: %v", baselinePath, err)
	}
	metric := func(rs []BenchResult, bench, m string) (float64, bool) {
		for _, r := range rs {
			// Sub-benchmark names (Benchmark/sub) compare on the full name.
			if r.Name == bench {
				v, ok := r.Metrics[m]
				return v, ok
			}
		}
		return 0, false
	}
	var regressions []string
	for _, key := range strings.Split(keys, ",") {
		key = strings.TrimSpace(key)
		bench, m, ok := strings.Cut(key, ":")
		if !ok {
			fatalf("gate key %q: want BenchName:metric", key)
		}
		want, ok := metric(base.Benchmarks, bench, m)
		if !ok {
			fmt.Printf("tsbench: gate %s: not in baseline %s, skipping\n", key, baselinePath)
			continue
		}
		got, ok := metric(cur, bench, m)
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline (%.4g) but missing from this run", key, want))
			continue
		}
		floor := want * (1 - band)
		verdict := "ok"
		if got < floor {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g, below the noise band floor %.4g (baseline %.4g, band %.0f%%)",
					key, got, floor, want, 100*band))
		}
		fmt.Printf("tsbench: gate %-45s %12.4g vs baseline %12.4g (floor %12.4g) %s\n",
			key, got, want, floor, verdict)
	}
	return regressions
}

func main() {
	in := flag.String("in", "", "parse this existing `go test -bench` output instead of running the suite")
	out := flag.String("out", "", "output JSON path (default: next unused BENCH_<n>.json)")
	dir := flag.String("dir", ".", "directory for auto-numbered artifacts")
	benchRe := flag.String("bench", ".", "benchmark pattern forwarded to go test")
	benchtime := flag.String("benchtime", "1x", "benchtime forwarded to go test")
	count := flag.Int("count", 1, "count forwarded to go test")
	long := flag.Bool("long", false, "run without -short (includes the simulation-heavy benchmarks)")
	gateBase := flag.String("gate", "", "baseline BENCH_<n>.json to gate against: exit 1 if a tracked throughput key regresses past the noise band")
	gateBand := flag.Float64("gate-band", 0.25, "allowed fractional regression before the gate fails")
	gateKeys := flag.String("gate-keys", defaultGateKeys, "comma-separated BenchName:metric throughput keys the gate tracks")
	flag.Parse()

	if *gateBand < 0 || *gateBand >= 1 {
		fatalf("-gate-band must be in [0, 1)")
	}

	if err := cli.Positive("-count", *count); err != nil {
		fatalf("%v", err)
	}

	art := Artifact{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		art.Benchmarks = parseBench(f)
		f.Close()
		art.Command = "parsed from " + *in
	} else {
		args := []string{"test", "-run", "^$", "-bench", *benchRe,
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "./..."}
		if !*long {
			args = append([]string{"test", "-short"}, args[1:]...)
		}
		// SIGINT/SIGTERM cancels the suite: the go test child is killed
		// and no partial artifact is written.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		cmd := exec.CommandContext(ctx, "go", args...)
		cmd.Stderr = os.Stderr
		outBuf, err := cmd.Output()
		if errors.Is(ctx.Err(), context.Canceled) {
			fmt.Fprintln(os.Stderr, "tsbench: interrupted, benchmark run cancelled")
			os.Exit(130)
		}
		if err != nil {
			fatalf("go test: %v", err)
		}
		art.Benchmarks = parseBench(strings.NewReader(string(outBuf)))
		art.Command = "go " + strings.Join(args, " ")
	}

	path := *out
	if path == "" {
		path = nextArtifactPath(*dir)
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("tsbench: wrote %d benchmark results to %s\n", len(art.Benchmarks), path)

	if *gateBase != "" {
		if regressions := gate(*gateBase, *gateBand, *gateKeys, art.Benchmarks); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "tsbench: gate: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Println("tsbench: gate passed")
	}
}
