// Command tsserved is the miss-stream ingest and analysis daemon: it
// accepts wire-format classified miss streams (internal/wire) over TCP,
// binds each connection's session to a pooled incremental analyzer
// (tempstream.Session), and answers with the session's temporal-stream
// analysis. Per-session memory stays O(analysis window) no matter how
// long a client streams; concurrent sessions are bounded, with further
// sessions queuing behind the framed protocol's natural backpressure.
//
// Usage:
//
//	tsserved [-addr :7465] [-stats :7466] [-max-sessions 16] [-max-window N]
//	         [-max-queue N] [-resume-grace 30s] [-archive DIR] [-chaos SPEC]
//	         [-config FILE] [-log-format text|json] [-log-level LEVEL] [-pprof]
//
// The -stats listener serves a JSON snapshot on /stats (aggregate ingest
// counters plus one row per session), Prometheus text-format metrics on
// /metrics, and — with -pprof — the net/http/pprof profiles under
// /debug/pprof/. Structured logs (slog) go to stderr in -log-format at
// -log-level; stdout carries only the readiness lines. -config loads
// key=value or JSON flag defaults from a file; explicit command-line
// flags win. SIGINT/SIGTERM drain gracefully: the listener closes,
// in-flight and queued sessions run to completion (up to
// -drain-timeout), then the process exits 0.
//
// Overload is shed explicitly: beyond -max-queue waiting sessions, new
// arrivals are refused immediately with a machine-readable busy code and
// a retry hint instead of queueing. Clients speaking the resumable
// protocol (server.DialResilient, tsload's default) may reconnect after
// a mid-stream failure and continue the same analysis; the interrupted
// session's state is parked for -resume-grace.
//
// -archive DIR tees every accepted session into the managed archive
// store at DIR (internal/store): the exact record stream each analysis
// consumed is re-encoded to a TSW1 archive and committed to the store's
// manifest when the session completes, so cmd/tsquery can re-run or
// extend any historical analysis offline. Archiving is best-effort —
// a store failure is logged and the live session proceeds — and the
// store's occupancy metrics (store_archives, store_bytes,
// store_compactions_total) join the /metrics exposition.
//
// -chaos injects deterministic transport faults (resets, corruption,
// partial writes, stalls; see internal/faultnet) into every accepted
// connection — the harness the end-to-end chaos suite drives to prove
// the resilient client converges. Never enable it in production.
//
// Drive it with cmd/tsload (a simulated fleet of clients) or any producer
// that speaks the wire format — e.g. `tstrace -record` archives replayed
// by a thin client.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":7465", "ingest listen address")
	statsAddr := flag.String("stats", "", "stats HTTP listen address (empty = disabled)")
	name := flag.String("name", "", "instance name reported in stats (useful behind tsgate)")
	maxSessions := flag.Int("max-sessions", 16, "concurrent analysis sessions; further sessions queue")
	maxWindow := flag.Int("max-window", 0, "per-session analysis window ceiling in misses (0 = analysis default)")
	maxQueue := flag.Int("max-queue", 0, "waiting sessions before new arrivals are shed with busy (0 = 4*max-sessions, negative = no explicit shed)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a session may wait for a slot before failing busy (0 = 30s)")
	idleTimeout := flag.Duration("idle-timeout", 0, "max silence between a connection's reads before it is dropped (0 = 2m)")
	resumeGrace := flag.Duration("resume-grace", 0, "how long an interrupted resumable session's state is parked for resumption (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
	shardSessions := flag.Bool("shard-sessions", false, "fan each session's analysis consumers across goroutines per decoded chunk (identical results; useful with spare cores)")
	archiveDir := flag.String("archive", "", "tee every accepted session into the managed archive store at this directory (query it with tsquery)")
	chaos := flag.String("chaos", "", "deterministic fault-injection spec for accepted connections, e.g. seed=7,reset=262144,partial=1 (testing only)")
	configFile := flag.String("config", "", "config file with flag defaults (key=value lines or a JSON object); explicit flags win")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the stats listener")
	logFlags := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tsserved: %v\n", err)
		os.Exit(2)
	}
	if *configFile != "" {
		if err := cli.ApplyConfig(flag.CommandLine, *configFile); err != nil {
			fatal(err)
		}
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := cli.Positive("-max-sessions", *maxSessions); err != nil {
		fatal(err)
	}
	if err := cli.NonNegative("-max-window", *maxWindow); err != nil {
		fatal(err)
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	spec, err := faultnet.ParseSpec(*chaos)
	if err != nil {
		fatal(err)
	}

	var archive *store.Store
	if *archiveDir != "" {
		var damaged []error
		archive, damaged, err = store.Open(*archiveDir)
		if err != nil {
			fatal(err)
		}
		for _, d := range damaged {
			fmt.Fprintf(os.Stderr, "tsserved: archive store: %v (entry excluded)\n", d)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := server.NewServer(faultnet.Wrap(ln, spec), server.Config{
		Name:          *name,
		MaxSessions:   *maxSessions,
		MaxWindow:     *maxWindow,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		IdleTimeout:   *idleTimeout,
		ResumeGrace:   *resumeGrace,
		Archive:       archive,
		ShardSessions: *shardSessions,
		Logger:        logger,
	})
	if archive != nil {
		// The store's families join the server registry, so the one
		// /metrics surface carries warehouse occupancy next to ingest.
		archive.RegisterMetrics(srv.Registry())
		fmt.Printf("tsserved: archiving sessions to %s (%d archives, %d bytes)\n",
			archive.Dir(), archive.Archives(), archive.Bytes())
	}
	fmt.Printf("tsserved: listening on %s (max-sessions=%d)\n", srv.Addr(), *maxSessions)
	if spec.Enabled() {
		fmt.Printf("tsserved: CHAOS fault injection on every connection: %s\n", spec)
	}

	var statsSrv *http.Server
	if *statsAddr != "" {
		statsLn, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			fatal(err)
		}
		mux := obs.NewMux(srv.StatsHandler(), srv.Registry(), *pprofOn, nil)
		statsSrv = &http.Server{Handler: mux}
		go func() {
			if err := statsSrv.Serve(statsLn); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "tsserved: stats listener: %v\n", err)
			}
		}()
		fmt.Printf("tsserved: stats on http://%s/stats and /metrics\n", statsLn.Addr())
	}
	// The "listening" lines are the readiness signal for supervisors and
	// the e2e smoke test.
	os.Stdout.Sync()

	// The signal context is the root of the daemon's shutdown: its
	// cancellation starts the drain, which the server propagates through
	// its own per-session context tree (queued waits abort, live
	// connections close at the force deadline).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case <-sigCtx.Done():
		stop() // restore default handling: a second signal kills immediately
		fmt.Printf("tsserved: signal: draining (timeout %v)\n", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if statsSrv != nil {
			statsSrv.Close()
		}
		st := srv.Stats()
		fmt.Printf("tsserved: drained: %d sessions (%d failed, %d shed, %d resumed), %d records ingested\n",
			st.TotalSessions, st.FailedSessions, st.ShedSessions, st.ResumedSessions, st.TotalRecords)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsserved: drain incomplete: %v\n", err)
			os.Exit(1)
		}
	case err := <-serveErr:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
}
