// Command tsserved is the miss-stream ingest and analysis daemon: it
// accepts wire-format classified miss streams (internal/wire) over TCP,
// binds each connection's session to a pooled incremental analyzer
// (tempstream.Session), and answers with the session's temporal-stream
// analysis. Per-session memory stays O(analysis window) no matter how
// long a client streams; concurrent sessions are bounded, with further
// sessions queuing behind the framed protocol's natural backpressure.
//
// Usage:
//
//	tsserved [-addr :7465] [-stats :7466] [-max-sessions 16] [-max-window N]
//
// The -stats listener serves a JSON snapshot on /stats: aggregate ingest
// counters plus one row per session (records, records/sec, and — once the
// session completes — its stream fraction and MPKI). SIGINT/SIGTERM
// drain gracefully: the listener closes, in-flight and queued sessions
// run to completion (up to -drain-timeout), then the process exits 0.
//
// Drive it with cmd/tsload (a simulated fleet of clients) or any producer
// that speaks the wire format — e.g. `tstrace -record` archives replayed
// by a thin client.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7465", "ingest listen address")
	statsAddr := flag.String("stats", "", "stats HTTP listen address (empty = disabled)")
	maxSessions := flag.Int("max-sessions", 16, "concurrent analysis sessions; further sessions queue")
	maxWindow := flag.Int("max-window", 0, "per-session analysis window ceiling in misses (0 = analysis default)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a session may wait for a slot before failing busy (0 = 30s)")
	idleTimeout := flag.Duration("idle-timeout", 0, "max silence between a connection's reads before it is dropped (0 = 2m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tsserved: %v\n", err)
		os.Exit(2)
	}
	if err := cli.Positive("-max-sessions", *maxSessions); err != nil {
		fatal(err)
	}
	if err := cli.NonNegative("-max-window", *maxWindow); err != nil {
		fatal(err)
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}

	srv, err := server.Listen(*addr, server.Config{
		MaxSessions:  *maxSessions,
		MaxWindow:    *maxWindow,
		QueueTimeout: *queueTimeout,
		IdleTimeout:  *idleTimeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tsserved: listening on %s (max-sessions=%d)\n", srv.Addr(), *maxSessions)

	var statsSrv *http.Server
	if *statsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		statsSrv = &http.Server{Addr: *statsAddr, Handler: mux}
		go func() {
			if err := statsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "tsserved: stats listener: %v\n", err)
			}
		}()
		fmt.Printf("tsserved: stats on http://%s/stats\n", *statsAddr)
	}
	// The "listening" lines are the readiness signal for supervisors and
	// the e2e smoke test.
	os.Stdout.Sync()

	// The signal context is the root of the daemon's shutdown: its
	// cancellation starts the drain, which the server propagates through
	// its own per-session context tree (queued waits abort, live
	// connections close at the force deadline).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case <-sigCtx.Done():
		stop() // restore default handling: a second signal kills immediately
		fmt.Printf("tsserved: signal: draining (timeout %v)\n", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if statsSrv != nil {
			statsSrv.Close()
		}
		st := srv.Stats()
		fmt.Printf("tsserved: drained: %d sessions (%d failed), %d records ingested\n",
			st.TotalSessions, st.FailedSessions, st.TotalRecords)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsserved: drain incomplete: %v\n", err)
			os.Exit(1)
		}
	case err := <-serveErr:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
}
