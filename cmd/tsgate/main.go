// Command tsgate is the ingest fleet gateway: it fronts N tsserved
// backends, consistent-hash-routing each new session to a healthy
// backend (bounded load), health-checking every backend through the
// ingest-port probe feeding a per-backend circuit breaker, and relaying
// each session's wire stream frame by frame while holding the frames in
// a replay ring — when a backend dies mid-session the session restarts
// on a survivor from frame zero, invisible to the client. When every
// backend is down or saturated, arrivals are shed with the protocol's
// typed busy/draining codes and an honest retry hint.
//
// Usage:
//
//	tsgate -backends host1:7465,host2:7465 [-addr :7464] [-stats :7467]
//	       [-backends-file PATH] [-name tsgate] [-probe-interval 2s]
//	       [-load-factor 1.25] [-ring-frames 4096] [-resume-grace 30s]
//	       [-config FILE] [-log-format text|json] [-log-level LEVEL] [-pprof]
//
// Clients speak to tsgate exactly as they would to a single tsserved —
// tsload needs only the address swapped. The -stats listener serves the
// fleet view on /stats (per-backend circuit state, session counts,
// records/sec), Prometheus text-format metrics on /metrics, membership
// admin on /backends (GET lists, POST replaces; removed backends drain,
// added ones warm in), and — with -pprof — net/http/pprof under
// /debug/pprof/. Structured logs (slog) go to stderr in -log-format at
// -log-level; stdout carries only the readiness lines. -config loads
// key=value or JSON flag defaults from a file; explicit command-line
// flags win. SIGHUP re-reads -backends-file for the same live membership
// edit. SIGINT/SIGTERM drain gracefully, then print a fleet summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7464", "client-facing ingest listen address")
	statsAddr := flag.String("stats", "", "fleet stats/admin HTTP listen address (empty = disabled)")
	backends := flag.String("backends", "", "comma-separated backend ingest addresses")
	backendsFile := flag.String("backends-file", "", "file listing backend addresses (one per line, # comments); SIGHUP re-reads it")
	name := flag.String("name", "tsgate", "gateway name: the Via label on forwarded sessions and the stats identity")
	probeInterval := flag.Duration("probe-interval", 0, "health-check period per backend (0 = 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "health-check probe timeout (0 = 2s)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load cap: skip a backend at ceil(factor*mean) active sessions (0 = 1.25)")
	ringFrames := flag.Int("ring-frames", 0, "per-session replay ring, in data frames; beyond it a session cannot fail over (0 = 4096)")
	resumeGrace := flag.Duration("resume-grace", 0, "how long an interrupted resumable session's state is parked for resumption; keep below the backends' idle timeout (0 = 30s)")
	retryHint := flag.Duration("retry-hint", 0, "retry_after_ms attached to shed responses (0 = 500ms)")
	idleTimeout := flag.Duration("idle-timeout", 0, "max silence between a client connection's reads before it is dropped (0 = 2m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
	configFile := flag.String("config", "", "config file with flag defaults (key=value lines or a JSON object); explicit flags win")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the stats listener")
	logFlags := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tsgate: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if *configFile != "" {
		if err := cli.ApplyConfig(flag.CommandLine, *configFile); err != nil {
			fatal(err)
		}
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if *backends == "" && *backendsFile == "" {
		fatal(fmt.Errorf("no backends: pass -backends or -backends-file"))
	}

	loadMembership := func() ([]string, error) {
		addrs := gateway.SplitBackendList(*backends)
		if *backendsFile != "" {
			body, err := os.ReadFile(*backendsFile)
			if err != nil {
				return nil, err
			}
			addrs = append(addrs, gateway.SplitBackendList(string(body))...)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("membership is empty")
		}
		return addrs, nil
	}
	members, err := loadMembership()
	if err != nil {
		fatal(err)
	}

	gw, err := gateway.Listen(*addr, gateway.Config{
		Name:          *name,
		Backends:      members,
		LoadFactor:    *loadFactor,
		RingFrames:    *ringFrames,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		RetryHint:     *retryHint,
		ResumeGrace:   *resumeGrace,
		IdleTimeout:   *idleTimeout,
		Logger:        logger,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tsgate: listening on %s (backends=%d)\n", gw.Addr(), len(members))

	var statsSrv *http.Server
	if *statsAddr != "" {
		statsLn, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			fatal(err)
		}
		mux := obs.NewMux(gw.StatsHandler(), gw.Registry(), *pprofOn,
			map[string]http.Handler{"/backends": gw.BackendsHandler()})
		statsSrv = &http.Server{Handler: mux}
		go func() {
			if err := statsSrv.Serve(statsLn); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "tsgate: stats listener: %v\n", err)
			}
		}()
		fmt.Printf("tsgate: stats on http://%s/stats and /metrics\n", statsLn.Addr())
	}
	// The "listening" lines are the readiness signal for supervisors and
	// the fleet e2e test.
	os.Stdout.Sync()

	// SIGHUP re-reads the membership; removed backends drain, added ones
	// warm in behind a probe.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			members, err := loadMembership()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsgate: SIGHUP reload failed: %v\n", err)
				continue
			}
			added, removed := gw.SetBackends(members)
			fmt.Printf("tsgate: membership reloaded: %d backends (+%d, -%d)\n",
				len(members), len(added), len(removed))
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve() }()

	select {
	case <-sigCtx.Done():
		stop() // restore default handling: a second signal kills immediately
		fmt.Printf("tsgate: signal: draining (timeout %v)\n", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := gw.Shutdown(ctx)
		if statsSrv != nil {
			statsSrv.Close()
		}
		st := gw.Stats()
		fmt.Printf("tsgate: drained: %d sessions (%d completed, %d failed, %d shed, %d rerouted, %d resumed) across %d backends\n",
			st.TotalSessions, st.CompletedSessions, st.FailedSessions, st.ShedSessions,
			st.ReroutedSessions, st.ResumedSessions, len(st.Backends))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsgate: drain incomplete: %v\n", err)
			os.Exit(1)
		}
	case err := <-serveErr:
		if err != nil && err != gateway.ErrGatewayClosed {
			fatal(err)
		}
	}
}
