// Command tstrace runs one workload/machine configuration and dumps the
// classified off-chip miss trace (and optionally the intra-chip trace) in
// a textual format: position, cpu, block address, class, supplier,
// function, category. Useful for inspecting what the simulator produces
// and for feeding external analyses.
//
// Usage:
//
//	tstrace -app oltp -machine multi [-scale small] [-n 1000] [-intra]
//
// -machine both simulates the multi-chip and single-chip organizations
// concurrently and dumps both traces, multi-chip first.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	appFlag := flag.String("app", "oltp", "workload: apache, zeus, oltp, qry1, qry2, qry17")
	machineFlag := flag.String("machine", "multi", "machine model: multi, single, or both")
	scaleFlag := flag.String("scale", "small", "scale: small, medium, large")
	n := flag.Int("n", 1000, "misses to print (0 = all)")
	target := flag.Int("target", 20000, "misses to simulate")
	intra := flag.Bool("intra", false, "dump the intra-chip trace (single-chip only)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	app, ok := map[string]workload.App{
		"apache": workload.Apache, "zeus": workload.Zeus, "oltp": workload.OLTP,
		"qry1": workload.Qry1, "qry2": workload.Qry2, "qry17": workload.Qry17,
	}[strings.ToLower(*appFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "tstrace: unknown app %q\n", *appFlag)
		os.Exit(2)
	}
	var machines []workload.MachineKind
	switch m := strings.ToLower(*machineFlag); {
	case strings.HasPrefix(m, "b"):
		machines = []workload.MachineKind{workload.MultiChip, workload.SingleChip}
	case strings.HasPrefix(m, "s"):
		machines = []workload.MachineKind{workload.SingleChip}
	default:
		machines = []workload.MachineKind{workload.MultiChip}
	}
	if *intra && (len(machines) != 1 || machines[0] != workload.SingleChip) {
		fmt.Fprintln(os.Stderr, "tstrace: -intra requires -machine single (multi-chip runs have no intra-chip trace)")
		os.Exit(2)
	}
	scale := map[string]workload.Scale{
		"small": workload.Small, "medium": workload.Medium, "large": workload.Large,
	}[strings.ToLower(*scaleFlag)]

	// Simulate all requested machines concurrently, then dump in order.
	results := make([]*workload.Result, len(machines))
	var g par.Group
	for i, machine := range machines {
		g.Go(func() {
			results[i] = workload.Run(workload.Config{
				App: app, Machine: machine, Scale: scale, Seed: *seed, TargetMisses: *target,
			})
		})
	}
	g.Wait()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, res := range results {
		tr := res.OffChip
		if *intra {
			tr = res.IntraChip // guaranteed non-nil: -intra implies single-chip
		}
		dump(w, app, machines[i], scale, res, tr, *n)
	}
}

func dump(w io.Writer, app workload.App, machine workload.MachineKind, scale workload.Scale,
	res *workload.Result, tr *trace.Trace, n int) {
	fmt.Fprintf(w, "# app=%v machine=%v scale=%v misses=%d instructions=%d mpki=%.3f\n",
		app, machine, scale, tr.Len(), tr.Instructions, tr.MPKI())
	fmt.Fprintf(w, "# %-8s %-4s %-14s %-14s %-8s %-24s %s\n",
		"pos", "cpu", "block", "class", "supply", "function", "category")
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		m := tr.Misses[i]
		f := res.SymTab.Func(m.Func)
		fmt.Fprintf(w, "%-10d %-4d %#-14x %-14s %-8s %-24s %s\n",
			i, m.CPU, m.Addr, m.Class, m.Supplier, f.Name, f.Category)
	}
}
