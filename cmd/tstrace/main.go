// Command tstrace runs one workload/machine configuration and dumps the
// classified off-chip miss trace (and optionally the intra-chip trace) in
// a textual format: position, cpu, block address, class, supplier,
// function, category. Useful for inspecting what the simulator produces
// and for feeding external analyses.
//
// Usage:
//
//	tstrace -app oltp -machine multi [-scale small] [-n 1000] [-intra]
//	tstrace -app oltp -machine multi -stream [-window 5000]
//
// -machine both simulates the multi-chip and single-chip organizations
// concurrently and dumps both traces, multi-chip first.
//
// -stream switches to the streaming data path: instead of materializing
// the trace, the simulator pushes each measurement-window miss into an
// incremental analyzer sink, and one line of temporal-stream statistics is
// printed per -window misses as the simulation runs. Peak memory is
// bounded by the window regardless of -target.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	appFlag := flag.String("app", "oltp", "workload: apache, zeus, oltp, qry1, qry2, qry17")
	machineFlag := flag.String("machine", "multi", "machine model: multi, single, or both")
	scaleFlag := flag.String("scale", "small", "scale: small, medium, large")
	n := flag.Int("n", 1000, "misses to print (0 = all)")
	target := flag.Int("target", 20000, "misses to simulate")
	intra := flag.Bool("intra", false, "use the intra-chip trace (single-chip only)")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Bool("stream", false, "streaming mode: print per-window stream fractions as the simulation runs")
	window := flag.Int("window", 5000, "misses per analysis window in -stream mode")
	flag.Parse()

	app, ok := map[string]workload.App{
		"apache": workload.Apache, "zeus": workload.Zeus, "oltp": workload.OLTP,
		"qry1": workload.Qry1, "qry2": workload.Qry2, "qry17": workload.Qry17,
	}[strings.ToLower(*appFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "tstrace: unknown app %q\n", *appFlag)
		os.Exit(2)
	}
	var machines []workload.MachineKind
	switch m := strings.ToLower(*machineFlag); {
	case strings.HasPrefix(m, "b"):
		machines = []workload.MachineKind{workload.MultiChip, workload.SingleChip}
	case strings.HasPrefix(m, "s"):
		machines = []workload.MachineKind{workload.SingleChip}
	default:
		machines = []workload.MachineKind{workload.MultiChip}
	}
	if *intra && (len(machines) != 1 || machines[0] != workload.SingleChip) {
		fmt.Fprintln(os.Stderr, "tstrace: -intra requires -machine single (multi-chip runs have no intra-chip trace)")
		os.Exit(2)
	}
	scale := map[string]workload.Scale{
		"small": workload.Small, "medium": workload.Medium, "large": workload.Large,
	}[strings.ToLower(*scaleFlag)]

	if *stream {
		if len(machines) != 1 {
			fmt.Fprintln(os.Stderr, "tstrace: -stream requires a single machine (-machine multi or single)")
			os.Exit(2)
		}
		if *window < 2 {
			fmt.Fprintln(os.Stderr, "tstrace: -window must be at least 2")
			os.Exit(2)
		}
		streamRun(app, machines[0], scale, *seed, *target, *window, *intra)
		return
	}

	// Simulate all requested machines concurrently, then dump in order.
	results := make([]*workload.Result, len(machines))
	var g par.Group
	for i, machine := range machines {
		g.Go(func() {
			results[i] = workload.Run(workload.Config{
				App: app, Machine: machine, Scale: scale, Seed: *seed, TargetMisses: *target,
			})
		})
	}
	g.Wait()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, res := range results {
		tr := res.OffChip
		if *intra {
			tr = res.IntraChip // guaranteed non-nil: -intra implies single-chip
		}
		dump(w, app, machines[i], scale, res, tr, *n)
	}
}

// windowSink is the -stream consumer: an incremental analyzer recycled
// every window misses, printing one statistics line per completed window
// while the simulation keeps running.
type windowSink struct {
	w      *bufio.Writer
	an     *core.Analyzer
	cpus   int
	window int

	idx      int // windows completed
	inWindow int
	total    int
	inStream int
}

// Append implements trace.Sink.
func (s *windowSink) Append(m trace.Miss) {
	if s.inWindow == 0 {
		s.an.Begin(s.cpus, core.Options{MaxMisses: s.window})
	}
	s.an.Feed(m)
	s.inWindow++
	if s.inWindow == s.window {
		s.flush()
	}
}

func (s *windowSink) flush() {
	a := s.an.Finish()
	_, ns, rc := a.Fractions()
	for i := range a.State {
		if a.State[i] != core.NonRepetitive {
			s.inStream++
		}
	}
	s.total += len(a.Misses)
	fmt.Fprintf(s.w, "window %-4d misses=%-7d in_streams=%5.1f%% new=%5.1f%% recurring=%5.1f%% rules=%-6d median_len=%.0f\n",
		s.idx, len(a.Misses), 100*(ns+rc), 100*ns, 100*rc, a.GrammarRules(), a.MedianStreamLength())
	s.w.Flush() // live output: the simulation keeps running after this line
	s.idx++
	s.inWindow = 0
}

// Finish implements trace.Sink.
func (s *windowSink) Finish(h trace.Header) {
	if s.inWindow > 0 {
		s.flush()
	}
	fmt.Fprintf(s.w, "# done: windows=%d misses=%d in_streams=%.1f%% instructions=%d mpki=%.3f\n",
		s.idx, s.total, 100*float64(s.inStream)/float64(max(s.total, 1)), h.Instructions, h.MPKI())
}

// streamRun drives one configuration through the streaming data path.
func streamRun(app workload.App, machine workload.MachineKind, scale workload.Scale,
	seed int64, target, window int, intra bool) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# app=%v machine=%v scale=%v target=%d window=%d stream=%s\n",
		app, machine, scale, target, window, map[bool]string{false: "off-chip", true: "intra-chip"}[intra])
	sink := &windowSink{w: w, an: core.NewAnalyzer(), cpus: machine.CPUCount(), window: window}
	cfg := workload.Config{App: app, Machine: machine, Scale: scale, Seed: seed, TargetMisses: target}
	if intra {
		workload.RunStream(cfg, nil, sink)
	} else {
		workload.RunStream(cfg, sink, nil)
	}
}

func dump(w io.Writer, app workload.App, machine workload.MachineKind, scale workload.Scale,
	res *workload.Result, tr *trace.Trace, n int) {
	fmt.Fprintf(w, "# app=%v machine=%v scale=%v misses=%d instructions=%d mpki=%.3f\n",
		app, machine, scale, tr.Len(), tr.Instructions, tr.MPKI())
	fmt.Fprintf(w, "# %-8s %-4s %-14s %-14s %-8s %-24s %s\n",
		"pos", "cpu", "block", "class", "supply", "function", "category")
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		m := tr.Misses[i]
		f := res.SymTab.Func(m.Func)
		fmt.Fprintf(w, "%-10d %-4d %#-14x %-14s %-8s %-24s %s\n",
			i, m.CPU, m.Addr, m.Class, m.Supplier, f.Name, f.Category)
	}
}
