// Command tstrace runs one workload/machine configuration and dumps the
// classified off-chip miss trace (and optionally the intra-chip trace) in
// a textual format: position, cpu, block address, class, supplier,
// function, category. Useful for inspecting what the simulator produces
// and for feeding external analyses.
//
// Usage:
//
//	tstrace -app oltp -machine multi [-scale small] [-n 1000] [-intra]
//	tstrace -app oltp -machine multi -stream [-window 5000]
//	tstrace -app oltp -machine multi -record trace.tsw
//	tstrace -app oltp -machine multi -store archives/
//	tstrace -replay trace.tsw [-n 1000]
//	tstrace -replay trace.tsw -stream [-window 5000]
//
// -machine both simulates the multi-chip and single-chip organizations
// concurrently and dumps both traces, multi-chip first.
//
// -stream switches to the streaming data path: instead of materializing
// the trace, the simulator pushes each measurement-window miss into an
// incremental analyzer sink, and one line of temporal-stream statistics is
// printed per -window misses as the simulation runs. Peak memory is
// bounded by the window regardless of -target.
//
// -record FILE streams the selected trace into a wire-format archive
// (internal/wire: framed, delta-encoded, CRC-protected, with the symbol
// table in the trailer) without materializing it; -replay FILE reads such
// an archive — from this command, another tool, or another machine — in
// place of running a simulation, driving exactly the sinks a live run
// would drive. Record→replay is byte-identical: replayed analyses
// reproduce the in-process results field for field.
//
// -store DIR records into the managed archive store (internal/store)
// instead of a bare file: the archive is committed under DIR's manifest
// with the run's full identity (app, machine, scale, seed), so tsquery
// can select it later by workload predicates instead of file paths.
//
// Every simulating mode runs under one signal context: SIGINT/SIGTERM
// stops the engine within one step (mid-warmup or mid-measurement) and
// the command exits cleanly (status 130) instead of running the
// remaining misses. -record writes to FILE.tmp and renames into place
// only after the trailer lands, so FILE is always a complete archive:
// an interrupt or crash mid-record cleans up the temp file and leaves
// any previous FILE untouched.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// interrupted reports a cancelled run to stderr and exits with the
// conventional SIGINT status.
func interrupted() {
	fmt.Fprintln(os.Stderr, "tstrace: interrupted, cancelling simulation")
	os.Exit(130)
}

func main() {
	appFlag := flag.String("app", "oltp", "workload: apache, zeus, oltp, qry1, qry2, qry17")
	machineFlag := flag.String("machine", "multi", "machine model: multi, single, or both")
	scaleFlag := flag.String("scale", "small", "scale: small, medium, large")
	n := flag.Int("n", 1000, "misses to print (0 = all)")
	target := flag.Int("target", 20000, "misses to simulate")
	intra := flag.Bool("intra", false, "use the intra-chip trace (single-chip only)")
	seed := flag.Int64("seed", 1, "random seed")
	stream := flag.Bool("stream", false, "streaming mode: print per-window stream fractions as the simulation runs")
	window := flag.Int("window", 5000, "misses per analysis window in -stream mode")
	pipeline := flag.Int("pipeline", 0, "in -stream mode, decouple simulation from analysis over an SPSC ring this many chunks deep (0 = serial; results are identical either way)")
	record := flag.String("record", "", "write the selected miss stream to this wire-format archive instead of dumping text")
	storeDir := flag.String("store", "", "record the selected miss stream into the managed archive store at this directory (manifest-indexed; query with tsquery)")
	replay := flag.String("replay", "", "read the miss stream from this wire-format archive instead of simulating")
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(2)
	}

	// Numeric validation first: these apply in every mode.
	if err := cli.NonNegative("-n", *n); err != nil {
		fatal(err)
	}
	if err := cli.Positive("-target", *target); err != nil {
		fatal(err)
	}
	if err := cli.Positive("-window", *window); err != nil {
		fatal(err)
	}
	if *stream && *window < 2 {
		fatal(fmt.Errorf("-window must be at least 2 in -stream mode"))
	}
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	if *record != "" && *stream {
		fatal(fmt.Errorf("-record and -stream are mutually exclusive (replay the archive with -replay -stream)"))
	}
	if *storeDir != "" && (*record != "" || *replay != "" || *stream) {
		fatal(fmt.Errorf("-store is a recording destination: it cannot combine with -record, -replay, or -stream"))
	}

	// One signal context governs every simulating mode below:
	// SIGINT/SIGTERM reaches the engine's per-step stop predicates.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replay != "" {
		if err := replayFile(*replay, *stream, *window, *n); err != nil {
			fatal(err)
		}
		return
	}

	app, err := cli.App(*appFlag)
	if err != nil {
		fatal(err)
	}
	machines, err := cli.Machines(*machineFlag)
	if err != nil {
		fatal(err)
	}
	scale, err := cli.Scale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	single := len(machines) == 1 && machines[0] == workload.SingleChip
	if *intra && !single {
		fatal(fmt.Errorf("-intra requires -machine single (multi-chip runs have no intra-chip trace)"))
	}

	if *record != "" {
		if len(machines) != 1 {
			fatal(fmt.Errorf("-record requires a single machine (-machine multi or single)"))
		}
		err := recordFile(ctx, *record, app, machines[0], scale, *seed, *target, *intra)
		if errors.Is(err, context.Canceled) {
			interrupted()
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	if *storeDir != "" {
		if len(machines) != 1 {
			fatal(fmt.Errorf("-store requires a single machine (-machine multi or single)"))
		}
		err := recordStore(ctx, *storeDir, app, machines[0], scale, *seed, *target, *intra)
		if errors.Is(err, context.Canceled) {
			interrupted()
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	if *stream {
		if len(machines) != 1 {
			fatal(fmt.Errorf("-stream requires a single machine (-machine multi or single)"))
		}
		if err := streamRun(ctx, app, machines[0], scale, *seed, *target, *window, *pipeline, *intra); err != nil {
			interrupted()
		}
		return
	}

	// Simulate all requested machines concurrently, then dump in order.
	results := make([]*workload.Result, len(machines))
	errs := make([]error, len(machines))
	var g par.Group
	for i, machine := range machines {
		g.GoCtx(ctx, func() {
			results[i], errs[i] = workload.RunContext(ctx, workload.Config{
				App: app, Machine: machine, Scale: scale, Seed: *seed, TargetMisses: *target,
			})
		})
	}
	g.Wait()
	if ctx.Err() != nil {
		interrupted()
	}
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, res := range results {
		tr := res.OffChip
		if *intra {
			tr = res.IntraChip // guaranteed non-nil: -intra implies single-chip
		}
		header := fmt.Sprintf("# app=%v machine=%v scale=%v", app, machines[i], scale)
		dump(w, header, res.SymTab, tr, *n)
	}
}

// recordFile streams one configuration's selected miss stream straight
// into a wire archive: the encoder is the measurement sink, so the trace
// is never materialized. The archive is written to path.tmp and renamed
// into place only after the trailer has landed and synced, so path never
// holds a truncated, trailerless stream — a crash, cancellation, or
// full disk leaves the previous archive (if any) untouched.
func recordFile(ctx context.Context, path string, app workload.App, machine workload.MachineKind,
	scale workload.Scale, seed int64, target int, intra bool) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	enc := wire.NewEncoder(bw, machine.CPUCount())
	cfg := workload.Config{App: app, Machine: machine, Scale: scale, Seed: seed, TargetMisses: target}
	var res *workload.Result
	if intra {
		res, err = workload.RunStreamContext(ctx, cfg, nil, enc)
	} else {
		res, err = workload.RunStreamContext(ctx, cfg, enc, nil)
	}
	if err != nil {
		return err
	}
	enc.SetSymbols(wire.FuncsOf(res.SymTab))
	if err = enc.Close(); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("tstrace: recorded %d misses (%s, %v, %v) to %s: %d bytes, %.2f bytes/miss\n",
		enc.Records(), app, machine, scale, path, fi.Size(),
		float64(fi.Size())/float64(max(enc.Records(), 1)))
	return nil
}

// recordStore streams one configuration's selected miss stream into the
// managed archive store: the store's Writer is the measurement sink, and
// Commit publishes the archive plus a manifest entry carrying the full
// workload identity (app, machine, scale, seed). Crash-safety is the
// store's: an interrupt mid-record aborts the temp file and the manifest
// never mentions the run.
func recordStore(ctx context.Context, dir string, app workload.App, machine workload.MachineKind,
	scale workload.Scale, seed int64, target int, intra bool) error {
	s, damaged, err := store.Open(dir)
	if err != nil {
		return err
	}
	for _, d := range damaged {
		fmt.Fprintf(os.Stderr, "tstrace: store: %v (entry excluded)\n", d)
	}
	meta := store.Meta{
		App:     strings.ToLower(app.String()),
		Machine: machine.String(),
		Scale:   scale.String(),
		Seed:    seed,
	}
	w, err := s.NewWriter(meta, machine.CPUCount())
	if err != nil {
		return err
	}
	cfg := workload.Config{App: app, Machine: machine, Scale: scale, Seed: seed, TargetMisses: target}
	var res *workload.Result
	if intra {
		res, err = workload.RunStreamContext(ctx, cfg, nil, w)
	} else {
		res, err = workload.RunStreamContext(ctx, cfg, w, nil)
	}
	if err != nil {
		w.Abort()
		return err
	}
	w.SetSymbols(wire.FuncsOf(res.SymTab))
	entry, err := w.Commit()
	if err != nil {
		w.Abort()
		return err
	}
	fmt.Printf("tstrace: recorded %d misses (%s, %v, %v, seed %d) to store %s as %s: %d bytes, %s\n",
		entry.Records, app, machine, scale, seed, dir, entry.ID, entry.Bytes, entry.Digest)
	return nil
}

// replayFile drives the dump or streaming-analysis sinks from a wire
// archive instead of a simulation.
func replayFile(path string, stream bool, window, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if stream {
		dec := wire.NewDecoder(f)
		meta, err := dec.Meta()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# replay=%s cpus=%d window=%d\n", path, meta.CPUs, window)
		sink := &windowSink{w: w, an: core.NewAnalyzer(), cpus: meta.CPUs, window: window}
		if _, err := dec.Run(sink); err != nil {
			return err
		}
		return dec.ExpectEOF()
	}

	tr, trailer, err := wire.ReadAll(f)
	if err != nil {
		return err
	}
	dump(w, fmt.Sprintf("# replay=%s", path), trailer.SymbolTable(), tr, n)
	return nil
}

// windowSink is the -stream consumer: an incremental analyzer recycled
// every window misses, printing one statistics line per completed window
// while the simulation keeps running.
type windowSink struct {
	w      *bufio.Writer
	an     *core.Analyzer
	cpus   int
	window int

	idx      int // windows completed
	inWindow int
	total    int
	inStream int
}

// Append implements trace.Sink.
func (s *windowSink) Append(m trace.Miss) {
	if s.inWindow == 0 {
		s.an.Begin(s.cpus, core.Options{MaxMisses: s.window})
	}
	s.an.Feed(m)
	s.inWindow++
	if s.inWindow == s.window {
		s.flush()
	}
}

func (s *windowSink) flush() {
	a := s.an.Finish()
	_, ns, rc := a.Fractions()
	counts := a.StateCounts()
	s.inStream += counts[core.NewStream] + counts[core.Recurring]
	s.total += len(a.Misses)
	fmt.Fprintf(s.w, "window %-4d misses=%-7d in_streams=%5.1f%% new=%5.1f%% recurring=%5.1f%% rules=%-6d median_len=%.0f\n",
		s.idx, len(a.Misses), 100*(ns+rc), 100*ns, 100*rc, a.GrammarRules(), a.MedianStreamLength())
	s.w.Flush() // live output: the simulation keeps running after this line
	s.idx++
	s.inWindow = 0
}

// Finish implements trace.Sink.
func (s *windowSink) Finish(h trace.Header) {
	if s.inWindow > 0 {
		s.flush()
	}
	fmt.Fprintf(s.w, "# done: windows=%d misses=%d in_streams=%.1f%% instructions=%d mpki=%.3f\n",
		s.idx, s.total, 100*float64(s.inStream)/float64(max(s.total, 1)), h.Instructions, h.MPKI())
}

// streamRun drives one configuration through the streaming data path.
// With pipeline > 0 the window analysis runs on its own goroutine
// behind an SPSC ring, overlapping the simulator; the printed windows
// are identical either way. On cancellation the already-printed windows
// stand (they were live output) and the error is returned.
func streamRun(ctx context.Context, app workload.App, machine workload.MachineKind, scale workload.Scale,
	seed int64, target, window, pipeline int, intra bool) error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# app=%v machine=%v scale=%v target=%d window=%d stream=%s pipeline=%d\n",
		app, machine, scale, target, window, map[bool]string{false: "off-chip", true: "intra-chip"}[intra], pipeline)
	var sink trace.Sink = &windowSink{w: w, an: core.NewAnalyzer(), cpus: machine.CPUCount(), window: window}
	if pipeline > 0 {
		p := trace.NewPipelined(sink, pipeline)
		defer p.Close()
		sink = p
	}
	cfg := workload.Config{App: app, Machine: machine, Scale: scale, Seed: seed, TargetMisses: target}
	var err error
	if intra {
		_, err = workload.RunStreamContext(ctx, cfg, nil, sink)
	} else {
		_, err = workload.RunStreamContext(ctx, cfg, sink, nil)
	}
	return err
}

func dump(w io.Writer, header string, st *trace.SymbolTable, tr *trace.Trace, n int) {
	fmt.Fprintf(w, "%s misses=%d instructions=%d mpki=%.3f\n",
		header, tr.Len(), tr.Instructions, tr.MPKI())
	fmt.Fprintf(w, "# %-8s %-4s %-14s %-14s %-8s %-24s %s\n",
		"pos", "cpu", "block", "class", "supply", "function", "category")
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		m := tr.Misses[i]
		f := st.Func(m.Func)
		fmt.Fprintf(w, "%-10d %-4d %#-14x %-14s %-8s %-24s %s\n",
			i, m.CPU, m.Addr, m.Class, m.Supplier, f.Name, f.Category)
	}
}
