// Command tsquery is the temporal query layer over a managed archive
// store (internal/store): it lists and inspects wire-format miss-stream
// archives by their manifest metadata, analyzes selections through the
// same tempstream.Session machinery that answers live ingest — so a
// query over stored streams is byte-identical to having analyzed them
// in process — and applies retention.
//
// Usage:
//
//	tsquery list    -dir DIR [-app LIST] [-machine LIST] [-scale LIST] [-seed N] [-label L] [-json]
//	tsquery show    -dir DIR -id ID [-head N] [-json]
//	tsquery analyze -dir DIR [selection flags] [-from N] [-to N]
//	                [-cpu N] [-class C] [-category C] [-window N] [-json]
//	tsquery prune   -dir DIR [-max-bytes N] [-max-age DUR] [-orphans] [-json]
//
// Selection flags take the CLI spellings the manifest stores: apps as
// "oltp, apache, ...", machines as "multi-chip"/"single-chip", scales
// as "small"/"medium"/"large". -class is one of compulsory, coherence,
// io-coherence, replacement; -category is a Table-2 slug (run
// `tsquery show` on an archive to see which categories its symbol
// table uses).
//
// Corrupt or truncated archives are never fatal to a query: they are
// skipped with a warning on stderr (exit status 3 if every selected
// archive was skipped), exactly the typed-error contract of
// internal/store.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	tempstream "repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "prune":
		err = cmdPrune(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tsquery: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsquery: %v\n", err)
		if errors.Is(err, errAllSkipped) {
			os.Exit(3)
		}
		os.Exit(2)
	}
}

// errAllSkipped distinguishes "the query matched archives but every one
// was corrupt" (exit 3) from usage/IO errors (exit 2).
var errAllSkipped = errors.New("every selected archive was skipped")

func usage() {
	fmt.Fprint(os.Stderr, `usage: tsquery <command> -dir DIR [flags]

commands:
  list      list archives in the store's manifest
  show      inspect one archive: manifest entry, totals, symbol table
  analyze   run selected archives through the temporal-stream analysis
  prune     apply retention (oldest-first compaction) and reclaim orphans
`)
}

// storeFlags is the flag surface shared by every subcommand.
func storeFlags(fs *flag.FlagSet) *string {
	return fs.String("dir", "", "archive store directory (required)")
}

// selectionFlags declares the manifest-predicate flags and returns a
// builder that validates them into a store.Query.
func selectionFlags(fs *flag.FlagSet) func() (store.Query, error) {
	apps := fs.String("app", "", "restrict to these apps (comma-separated: "+cli.AppNames()+")")
	machines := fs.String("machine", "", "restrict to these machines (multi, single, or both)")
	scales := fs.String("scale", "", "restrict to these scales (comma-separated: small, medium, large)")
	seed := fs.Int64("seed", -1, "restrict to this seed (-1 = any)")
	label := fs.String("label", "", "restrict to this exact label")
	id := fs.String("id", "", "restrict to this exact archive ID")
	return func() (store.Query, error) {
		var q store.Query
		if *apps != "" {
			list, err := cli.Apps(*apps)
			if err != nil {
				return q, err
			}
			for _, a := range list {
				q.Apps = append(q.Apps, strings.ToLower(a.String()))
			}
		}
		if *machines != "" {
			list, err := cli.Machines(*machines)
			if err != nil {
				return q, err
			}
			for _, m := range list {
				q.Machines = append(q.Machines, m.String())
			}
		}
		if *scales != "" {
			for _, part := range strings.Split(*scales, ",") {
				sc, err := cli.Scale(strings.TrimSpace(part))
				if err != nil {
					return q, err
				}
				q.Scales = append(q.Scales, sc.String())
			}
		}
		if *seed >= 0 {
			q.Seed = seed
		}
		q.Label = *label
		q.ID = *id
		return q, nil
	}
}

// openStore opens the store and surfaces damaged entries as warnings.
func openStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, errors.New("-dir is required")
	}
	s, damaged, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	for _, d := range damaged {
		fmt.Fprintf(os.Stderr, "tsquery: warning: %v (entry excluded)\n", d)
	}
	return s, nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("tsquery list", flag.ExitOnError)
	dir := storeFlags(fs)
	buildQuery := selectionFlags(fs)
	jsonOut := fs.Bool("json", false, "machine-readable output")
	fs.Parse(args)
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	q, err := buildQuery()
	if err != nil {
		return err
	}
	entries := s.Select(q)
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(entries)
	}
	rep, err := s.Check()
	if err == nil {
		for _, o := range rep.Orphans {
			fmt.Fprintf(os.Stderr, "tsquery: warning: orphan archive %s (not in manifest; prune -orphans reclaims it)\n", o)
		}
		for _, tmp := range rep.Temps {
			fmt.Fprintf(os.Stderr, "tsquery: warning: leftover temp %s (crashed writer; prune -orphans reclaims it)\n", tmp)
		}
	}
	fmt.Printf("%-40s %-8s %-12s %-7s %6s %5s %10s %12s  %s\n",
		"ID", "APP", "MACHINE", "SCALE", "SEED", "CPUS", "RECORDS", "BYTES", "START")
	var bytes, records int64
	for _, e := range entries {
		fmt.Printf("%-40s %-8s %-12s %-7s %6d %5d %10d %12d  %s\n",
			e.ID, orDash(e.App), orDash(e.Machine), orDash(e.Scale), e.Seed, e.CPUs,
			e.Records, e.Bytes, e.Start.Format(time.RFC3339))
		bytes += e.Bytes
		records += e.Records
	}
	fmt.Printf("# %d archives, %d records, %d bytes\n", len(entries), records, bytes)
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("tsquery show", flag.ExitOnError)
	dir := storeFlags(fs)
	id := fs.String("id", "", "archive ID to show (required; see tsquery list)")
	head := fs.Int("head", 10, "records to preview (0 = none)")
	jsonOut := fs.Bool("json", false, "machine-readable output")
	fs.Parse(args)
	if *id == "" && fs.NArg() == 1 {
		*id = fs.Arg(0) // allow `tsquery show -dir D ID`
	}
	if *id == "" {
		return errors.New("show: -id is required")
	}
	if err := cli.NonNegative("-head", *head); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	e, ok := s.Entry(*id)
	if !ok {
		return fmt.Errorf("show: no archive %q in %s", *id, s.Dir())
	}

	// One decode pass captures the preview; the decoder's Symbols
	// accessor then attributes it without re-deriving the table from the
	// trailer by hand.
	f, err := os.Open(s.Dir() + string(os.PathSeparator) + e.File())
	if err != nil {
		return err
	}
	defer f.Close()
	dec := wire.NewDecoder(f)
	var preview headSink
	preview.limit = *head
	tr, err := dec.Run(&preview)
	if err != nil {
		return fmt.Errorf("show: %w (archive is corrupt or truncated)", err)
	}
	st := dec.Symbols()

	if *jsonOut {
		type funcLine struct {
			ID       int    `json:"id"`
			Name     string `json:"name"`
			Category string `json:"category"`
		}
		out := struct {
			Entry  store.Entry  `json:"entry"`
			Header trace.Header `json:"header"`
			Funcs  []funcLine   `json:"funcs"`
		}{Entry: e, Header: tr.Header}
		for _, fn := range st.Funcs() {
			out.Funcs = append(out.Funcs, funcLine{ID: int(fn.ID), Name: fn.Name, Category: fn.Category.String()})
		}
		return json.NewEncoder(os.Stdout).Encode(out)
	}

	fmt.Printf("archive   %s\n", e.ID)
	fmt.Printf("workload  app=%s machine=%s scale=%s seed=%d label=%s\n",
		orDash(e.App), orDash(e.Machine), orDash(e.Scale), e.Seed, orDash(e.Label))
	fmt.Printf("stream    cpus=%d records=%d instructions=%d mpki=%.3f\n",
		e.CPUs, e.Records, tr.Header.Instructions, tr.Header.MPKI())
	fmt.Printf("storage   bytes=%d digest=%s recorded=[%s, %s]\n",
		e.Bytes, e.Digest, e.Start.Format(time.RFC3339), e.End.Format(time.RFC3339))
	fmt.Printf("symbols   %d functions\n", st.Len())
	cats := map[string]int{}
	for _, fn := range st.Funcs() {
		cats[fn.Category.String()]++
	}
	names := make([]string, 0, len(cats))
	for name := range cats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("          %3d  %s\n", cats[name], name)
	}
	if *head > 0 {
		fmt.Printf("# %-8s %-4s %-14s %-14s %-24s %s\n", "pos", "cpu", "block", "class", "function", "category")
		for i, m := range preview.ms {
			fn := st.Func(m.Func)
			fmt.Printf("%-10d %-4d %#-14x %-14s %-24s %s\n", i, m.CPU, m.Addr, m.Class, fn.Name, fn.Category)
		}
	}
	return nil
}

// headSink keeps the first limit records and drops the rest.
type headSink struct {
	limit int
	ms    []trace.Miss
}

func (h *headSink) Append(m trace.Miss) {
	if len(h.ms) < h.limit {
		h.ms = append(h.ms, m)
	}
}
func (h *headSink) Finish(trace.Header) {}

// classNames maps CLI spellings to miss classes.
var classNames = map[string]trace.MissClass{
	"compulsory":   trace.Compulsory,
	"coherence":    trace.Coherence,
	"io-coherence": trace.IOCoherence,
	"replacement":  trace.Replacement,
}

// categorySlugs maps CLI spellings to Table-2 categories.
var categorySlugs = map[string]trace.Category{
	"unknown":        trace.CatUnknown,
	"bulk-copy":      trace.CatBulkCopy,
	"syscall":        trace.CatSyscall,
	"scheduler":      trace.CatScheduler,
	"mmu-trap":       trace.CatMMUTrap,
	"sync":           trace.CatSync,
	"kernel-other":   trace.CatKernelOther,
	"streams":        trace.CatSTREAMS,
	"ip-packet":      trace.CatIPPacket,
	"web-worker":     trace.CatWebWorker,
	"perl-input":     trace.CatPerlInput,
	"perl-engine":    trace.CatPerlEngine,
	"perl-other":     trace.CatPerlOther,
	"block-dev":      trace.CatBlockDev,
	"db-access":      trace.CatDBAccess,
	"db-req-control": trace.CatDBReqControl,
	"db-ipc":         trace.CatDBIPC,
	"db-interpreter": trace.CatDBInterpreter,
	"db-other":       trace.CatDBOther,
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("tsquery analyze", flag.ExitOnError)
	dir := storeFlags(fs)
	buildQuery := selectionFlags(fs)
	from := fs.Int64("from", 0, "first stream position to analyze (record range)")
	to := fs.Int64("to", 0, "stream position to stop before (0 = end of stream)")
	cpu := fs.Int("cpu", -1, "analyze only this CPU's misses (-1 = all)")
	class := fs.String("class", "", "analyze only this miss class ("+strings.Join(sortedKeys(classNames), ", ")+")")
	category := fs.String("category", "", "analyze only misses attributed to this Table-2 category slug")
	window := fs.Int("window", 0, "analysis window in misses (0 = default, matching in-process runs)")
	jsonOut := fs.Bool("json", false, "machine-readable output (per-archive SessionResult)")
	fs.Parse(args)
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	q, err := buildQuery()
	if err != nil {
		return err
	}
	if *from < 0 || (*to != 0 && *to < *from) {
		return fmt.Errorf("analyze: invalid record range [%d, %d)", *from, *to)
	}
	q.From, q.To = *from, *to
	if *cpu >= 0 {
		q.CPU = cpu
	}
	if *class != "" {
		c, ok := classNames[strings.ToLower(*class)]
		if !ok {
			return fmt.Errorf("analyze: unknown class %q (want one of %s)", *class, strings.Join(sortedKeys(classNames), ", "))
		}
		q.Class = &c
	}
	if *category != "" {
		c, ok := categorySlugs[strings.ToLower(*category)]
		if !ok {
			return fmt.Errorf("analyze: unknown category %q (want one of %s)", *category, strings.Join(sortedKeys(categorySlugs), ", "))
		}
		q.Category = &c
	}
	if err := cli.NonNegative("-window", *window); err != nil {
		return err
	}

	opts := tempstream.StreamOptions{Analysis: core.Options{MaxMisses: *window}}
	results, errs := s.Analyze(q, opts)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "tsquery: warning: %v (archive skipped)\n", e)
	}

	if *jsonOut {
		type line struct {
			Entry  store.Entry           `json:"entry"`
			Result *server.SessionResult `json:"result"`
		}
		out := make([]line, 0, len(results))
		for _, r := range results {
			out = append(out, line{Entry: r.Entry, Result: server.ResultOf(r.Context)})
		}
		if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			sr := server.ResultOf(r.Context)
			fmt.Printf("%-40s records=%-9d window=%-7d streams=%5.1f%% rules=%-6d median_len=%-5.0f mpki=%7.3f digest=%016x\n",
				r.Entry.ID, sr.Header.Misses, sr.Window, 100*sr.StreamFrac,
				sr.GrammarRules, sr.MedianStreamLen, sr.MPKI, sr.WindowDigest)
		}
		fmt.Printf("# %d archives analyzed, %d skipped\n", len(results), len(errs))
	}
	if len(results) == 0 && len(errs) > 0 {
		return errAllSkipped
	}
	return nil
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("tsquery prune", flag.ExitOnError)
	dir := storeFlags(fs)
	maxBytes := fs.Int64("max-bytes", 0, "retention byte budget (0 = no size cap)")
	maxAge := fs.Duration("max-age", 0, "retention age limit (0 = no age limit)")
	orphans := fs.Bool("orphans", false, "also reclaim orphan archives and crashed writers' temp files")
	grace := fs.Duration("orphan-grace", time.Minute, "leave orphans younger than this alone (in-flight writers)")
	jsonOut := fs.Bool("json", false, "machine-readable output")
	fs.Parse(args)
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	removed, err := s.Prune(store.Retention{
		MaxBytes: *maxBytes, MaxAge: *maxAge,
		Orphans: *orphans, OrphanGrace: *grace,
	}, time.Now().UTC())
	if err != nil {
		return err
	}
	if *jsonOut {
		out := struct {
			Removed   []store.Entry `json:"removed"`
			Remaining int           `json:"remaining"`
			Bytes     int64         `json:"bytes"`
		}{Removed: removed, Remaining: s.Archives(), Bytes: s.Bytes()}
		if out.Removed == nil {
			out.Removed = []store.Entry{}
		}
		return json.NewEncoder(os.Stdout).Encode(out)
	}
	for _, e := range removed {
		fmt.Printf("pruned %s (%d bytes, recorded %s)\n", e.ID, e.Bytes, e.Start.Format(time.RFC3339))
	}
	fmt.Printf("# %d archives pruned; %d remain, %d bytes\n", len(removed), s.Archives(), s.Bytes())
	return nil
}
